#include "obs/families.hpp"

namespace omig::obs {

SimMetrics& sim_metrics() {
  static SimMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    SimMetrics m;
    m.invocations_local =
        &r.counter("omig_sim_invocations_total",
                   "Simulated invocations by caller locality",
                   {{"kind", "local"}});
    m.invocations_remote =
        &r.counter("omig_sim_invocations_total",
                   "Simulated invocations by caller locality",
                   {{"kind", "remote"}});
    m.call_local_milli = &r.histogram(
        "omig_sim_call_local_milli",
        "Local-call duration in sim-time milli-units (incl. transit waits)");
    m.call_remote_milli = &r.histogram(
        "omig_sim_call_remote_milli",
        "Remote-call duration in sim-time milli-units (legs + faults)");
    return m;
  }();
  return metrics;
}

RuntimeMetrics& runtime_metrics() {
  static RuntimeMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    RuntimeMetrics m;
    m.invocations_local = &r.counter("omig_runtime_invocations_total",
                                     "Live-runtime invocations by locality",
                                     {{"kind", "local"}});
    m.invocations_remote = &r.counter("omig_runtime_invocations_total",
                                      "Live-runtime invocations by locality",
                                      {{"kind", "remote"}});
    m.invoke_local_us = &r.histogram(
        "omig_runtime_invoke_local_us",
        "Wall-clock send-to-reply time of caller-local invocations");
    m.invoke_remote_us =
        &r.histogram("omig_runtime_invoke_remote_us",
                     "Wall-clock send-to-reply time of remote invocations");
    m.migrations = &r.counter("omig_runtime_migrations_total",
                              "Completed object relocations");
    m.migration_us =
        &r.histogram("omig_runtime_migration_us",
                     "Wall-clock evict-to-install time per migrated object");
    m.refused_moves =
        &r.counter("omig_runtime_refused_moves_total",
                   "move() requests refused by transient placement");
    m.lease_acquisitions =
        &r.counter("omig_runtime_lease_acquisitions_total",
                   "Placement locks taken by move/visit blocks");
    m.lease_expiries = &r.counter("omig_runtime_lease_expiries_total",
                                  "Placement locks released by lease expiry");
    m.retries = &r.counter("omig_runtime_retries_total",
                           "Message retransmissions under the same seq");
    m.recoveries = &r.counter("omig_runtime_recoveries_total",
                              "Objects reinstalled from a checkpoint");
    m.crashes = &r.counter("omig_runtime_crashes_total", "Node crashes");
    m.restarts = &r.counter("omig_runtime_restarts_total", "Node restarts");
    m.send_rejections =
        &r.counter("omig_runtime_send_rejections_total",
                   "Sends the transport rejected with a typed status");
    return m;
  }();
  return metrics;
}

TransportMetrics& transport_metrics() {
  static TransportMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    TransportMetrics m;
    m.frames_out =
        &r.counter("omig_transport_frames_out_total", "Wire frames sent");
    m.frames_in =
        &r.counter("omig_transport_frames_in_total", "Wire frames received");
    m.frame_bytes_out = &r.counter("omig_transport_frame_bytes_out_total",
                                   "Encoded frame bytes written to sockets");
    m.frame_bytes_in = &r.counter("omig_transport_frame_bytes_in_total",
                                  "Frame bytes read from sockets");
    m.reconnects = &r.counter("omig_transport_reconnects_total",
                              "Connections re-established after a reset");
    m.send_rejections = &r.counter("omig_transport_send_rejections_total",
                                   "Sends rejected with a typed status");
    return m;
  }();
  return metrics;
}

NodeMetrics& node_metrics() {
  static NodeMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    NodeMetrics m;
    m.invokes = &r.counter("omig_node_messages_total",
                           "Node messages executed by type",
                           {{"type", "invoke"}});
    m.installs = &r.counter("omig_node_messages_total",
                            "Node messages executed by type",
                            {{"type", "install"}});
    m.evicts = &r.counter("omig_node_messages_total",
                          "Node messages executed by type",
                          {{"type", "evict"}});
    m.dedup_hits =
        &r.counter("omig_node_dedup_hits_total",
                   "Requests answered from the at-most-once reply cache");
    m.hosted_objects =
        &r.gauge("omig_node_hosted_objects", "Objects currently hosted");
    m.server_bytes_in = &r.counter("omig_node_server_bytes_in_total",
                                   "Bytes read by the node's frame server");
    m.server_bytes_out = &r.counter("omig_node_server_bytes_out_total",
                                    "Bytes written by the node's frame server");
    return m;
  }();
  return metrics;
}

StoreMetrics& store_metrics() {
  static StoreMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    StoreMetrics m;
    m.wal_appends = &r.counter("omig_store_wal_appends_total",
                               "Records appended to the write-ahead log");
    m.wal_fsyncs = &r.counter("omig_store_wal_fsyncs_total",
                              "fsyncs issued by the write-ahead log");
    m.wal_bytes = &r.counter("omig_store_wal_bytes_total",
                             "Frame bytes written to the write-ahead log");
    m.replay_records = &r.counter("omig_store_replay_records_total",
                                  "WAL records applied during recovery");
    m.replay_truncations =
        &r.counter("omig_store_replay_truncations_total",
                   "Torn or corrupt WAL tails detected and discarded");
    m.snapshot_installs =
        &r.counter("omig_store_snapshot_installs_total",
                   "Compacted snapshots atomically installed");
    return m;
  }();
  return metrics;
}

DirMetrics& dir_metrics() {
  static DirMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    DirMetrics m;
    m.lookups_hit = &r.counter("omig_dir_lookups_total",
                               "Directory lookups by outcome",
                               {{"result", "hit"}});
    m.lookups_stale = &r.counter("omig_dir_lookups_total",
                                 "Directory lookups by outcome",
                                 {{"result", "stale"}});
    m.lookups_miss = &r.counter("omig_dir_lookups_total",
                                "Directory lookups by outcome",
                                {{"result", "miss"}});
    m.forward_hops = &r.counter("omig_dir_forward_hops_total",
                                "Forwarding-pointer hops chased by lookups");
    m.updates = &r.counter("omig_dir_updates_total",
                           "Shard-owner directory updates");
    m.invalidations =
        &r.counter("omig_dir_invalidations_total",
                   "Cache entries dropped by eager invalidation");
    m.fallbacks =
        &r.counter("omig_dir_fallbacks_total",
                   "Lookups resolved by the coordinator's central fallback");
    m.unresolved =
        &r.counter("omig_dir_unresolved_total",
                   "Lookups that found no live host and were retried");
    m.lookup_us = &r.histogram("omig_dir_lookup_us",
                               "Wall-clock time per live directory lookup");
    return m;
  }();
  return metrics;
}

ScenarioMetrics scenario_metrics(const std::string& scenario) {
  MetricsRegistry& r = MetricsRegistry::global();
  const Labels by{{"scenario", scenario}};
  ScenarioMetrics m;
  m.offered_bursts =
      &r.counter("omig_scenario_offered_bursts_total",
                 "Open-loop burst arrivals generated, by scenario", by);
  m.completed_bursts =
      &r.counter("omig_scenario_completed_bursts_total",
                 "Bursts fully executed, by scenario", by);
  m.ops_invoke = &r.counter("omig_scenario_ops_total",
                            "Operations issued by scenario and kind",
                            {{"scenario", scenario}, {"kind", "invoke"}});
  m.ops_move = &r.counter("omig_scenario_ops_total",
                          "Operations issued by scenario and kind",
                          {{"scenario", scenario}, {"kind", "move"}});
  m.ops_visit = &r.counter("omig_scenario_ops_total",
                           "Operations issued by scenario and kind",
                           {{"scenario", scenario}, {"kind", "visit"}});
  m.achieved_ops = &r.gauge(
      "omig_scenario_achieved_ops",
      "Achieved throughput of the last run (sim: ops per 1000 sim units; "
      "live: ops per second)",
      by);
  m.op_milli =
      &r.histogram("omig_scenario_op_milli",
                   "Simulated invocation latency in sim milli-units", by);
  m.burst_milli =
      &r.histogram("omig_scenario_burst_milli",
                   "Simulated whole-burst latency in sim milli-units", by);
  m.op_us = &r.histogram("omig_scenario_op_us",
                         "Live invocation wall-clock latency (µs)", by);
  return m;
}

PolicyMetrics policy_metrics(const std::string& policy) {
  MetricsRegistry& r = MetricsRegistry::global();
  const Labels by{{"policy", policy}};
  PolicyMetrics m;
  m.migrations_triggered =
      &r.counter("omig_policy_migrations_total",
                 "Migrations the adaptive policy triggered, by policy", by);
  m.suppressed_hysteresis = &r.counter(
      "omig_policy_suppressed_total",
      "Adaptive migrations suppressed, by policy and reason",
      {{"policy", policy}, {"reason", "hysteresis"}});
  m.suppressed_load = &r.counter(
      "omig_policy_suppressed_total",
      "Adaptive migrations suppressed, by policy and reason",
      {{"policy", policy}, {"reason", "load"}});
  m.pingpong_reversals = &r.counter(
      "omig_policy_pingpong_reversals_total",
      "Adaptive migrations that undid the object's previous one", by);
  m.ema_updates =
      &r.counter("omig_policy_ema_updates_total",
                 "Access-locality EMA updates recorded, by policy", by);
  return m;
}

void register_standard_metrics() {
  (void)sim_metrics();
  (void)runtime_metrics();
  (void)transport_metrics();
  (void)node_metrics();
  (void)store_metrics();
  (void)dir_metrics();
  // The scenario family is labelled by scenario name; pre-register the
  // shipped zoo (src/scenario/) so exporters show the schema. Hard-coded
  // rather than queried because obs sits below scenario in the layering.
  for (const char* name : {"cache", "game", "iot", "social"}) {
    (void)scenario_metrics(name);
  }
  // Same story for the adaptive-policy family (docs/policies.md).
  for (const char* name : {"adaptive", "adaptive-load"}) {
    (void)policy_metrics(name);
  }
}

}  // namespace omig::obs
