#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/assert.hpp"

namespace omig::obs {

void Histogram::merge(const HistogramTally& tally) {
  if (tally.count == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (tally.buckets[i] != 0) {
      buckets_[i].fetch_add(tally.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(tally.count, std::memory_order_relaxed);
  sum_.fetch_add(tally.sum, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_bound(std::size_t i) {
  OMIG_ASSERT(i < kBuckets);
  // The last bucket is +Inf; report the largest finite bound below it.
  if (i >= kBuckets - 1) i = kBuckets - 2;
  return std::uint64_t{1} << i;
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th observation (1-based, ceil), walked over cumulative
  // bucket counts.
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  const std::uint64_t rank = target < 1 ? 1 : (target > total ? total : target);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) return bucket_bound(i);
  }
  return bucket_bound(kBuckets - 1);
}

namespace {

/// Escapes a label value per the Prometheus text format.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// JSON string escaping for names and label values.
std::string escape_json(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  const char* sep = "";
  for (const auto& [k, v] : labels) {
    out += sep;
    out += '"';
    out += escape_json(k);
    out += "\":\"";
    out += escape_json(v);
    out += '"';
    sep = ",";
  }
  out += "}";
  return out;
}

/// With an extra label appended (for the histogram `le` series).
std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return render_labels(extended);
}

}  // namespace

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  const char* sep = "";
  for (const auto& [k, v] : labels) {
    out += sep;
    out += k + "=\"" + escape_label(v) + "\"";
    sep = ",";
  }
  out += "}";
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    Kind kind, const std::string& name, const std::string& help,
    const Labels& labels) {
  std::lock_guard lock{mutex_};
  // Heterogeneous lookup: a hit (the overwhelmingly common case — every
  // run re-registers the same series) allocates nothing.
  auto it = index_.find(KeyView{name, &labels});
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    OMIG_REQUIRE(entry.kind == kind,
                 "metric re-registered with a different kind: " + name +
                     render_labels(labels));
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  switch (kind) {
    case Kind::Counter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::Gauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::Histogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  index_.emplace(Key{name, labels}, entries_.size() - 1);
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return *find_or_create(Kind::Counter, name, help, labels).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return *find_or_create(Kind::Gauge, name, help, labels).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const Labels& labels) {
  return *find_or_create(Kind::Histogram, name, help, labels).histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock{mutex_};
  return entries_.size();
}

// Families in first-seen order, each with every series of that name in
// registration order. Series of one family are not necessarily registered
// together — scenario_metrics() registers a whole per-scenario block at a
// time, interleaving family names — and both exporters must render each
// family exactly once (duplicate # TYPE metadata is invalid exposition
// format; duplicate JSON keys silently drop series on parse).
template <typename Entries>
auto group_by_family(const Entries& entries) {
  using Entry = typename Entries::value_type::element_type;
  std::vector<std::pair<std::string_view, std::vector<const Entry*>>> groups;
  for (const auto& entry_ptr : entries) {
    const Entry& e = *entry_ptr;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == e.name; });
    if (it == groups.end()) {
      groups.emplace_back(e.name, std::vector<const Entry*>{});
      it = std::prev(groups.end());
    }
    it->second.push_back(&e);
  }
  return groups;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock{mutex_};
  std::ostringstream os;
  for (const auto& [family, series] : group_by_family(entries_)) {
    const Entry& first = *series.front();
    os << "# HELP " << family << ' ' << first.help << '\n';
    os << "# TYPE " << family << ' '
       << (first.kind == Kind::Counter
               ? "counter"
               : first.kind == Kind::Gauge ? "gauge" : "histogram")
       << '\n';
    for (const Entry* entry : series) {
      const Entry& e = *entry;
      switch (e.kind) {
        case Kind::Counter:
          os << e.name << render_labels(e.labels) << ' ' << e.counter->value()
             << '\n';
          break;
        case Kind::Gauge:
          os << e.name << render_labels(e.labels) << ' ' << e.gauge->value()
             << '\n';
          break;
        case Kind::Histogram: {
          const Histogram& h = *e.histogram;
          // Cumulative buckets up to the last non-empty finite one, then
          // +Inf — a valid (monotone) le-series without 64 lines per
          // histogram.
          std::size_t top = 0;
          for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
            if (h.bucket(i) > 0) top = i;
          }
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i <= top; ++i) {
            cumulative += h.bucket(i);
            os << e.name << "_bucket"
               << render_labels_with(e.labels, "le",
                                     std::to_string(Histogram::bucket_bound(i)))
               << ' ' << cumulative << '\n';
          }
          os << e.name << "_bucket"
             << render_labels_with(e.labels, "le", "+Inf") << ' ' << h.count()
             << '\n';
          os << e.name << "_sum" << render_labels(e.labels) << ' ' << h.sum()
             << '\n';
          os << e.name << "_count" << render_labels(e.labels) << ' '
             << h.count() << '\n';
          break;
        }
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock{mutex_};
  std::ostringstream os;
  os << '{';
  const char* family_sep = "";
  for (const auto& [family, series] : group_by_family(entries_)) {
    os << family_sep << '"' << escape_json(std::string{family}) << "\":[";
    family_sep = ",";
    const char* series_sep = "";
    for (const Entry* entry : series) {
      const Entry& e = *entry;
      os << series_sep << "{\"labels\":" << labels_json(e.labels);
      switch (e.kind) {
        case Kind::Counter: os << ",\"value\":" << e.counter->value(); break;
        case Kind::Gauge: os << ",\"value\":" << e.gauge->value(); break;
        case Kind::Histogram: {
          const Histogram& h = *e.histogram;
          os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum()
             << ",\"p50\":" << h.quantile(0.50)
             << ",\"p95\":" << h.quantile(0.95)
             << ",\"p99\":" << h.quantile(0.99) << ",\"buckets\":[";
          const char* bucket_sep = "";
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            const std::uint64_t n = h.bucket(i);
            if (n == 0) continue;
            os << bucket_sep << '[' << Histogram::bucket_bound(i) << ',' << n
               << ']';
            bucket_sep = ",";
          }
          os << ']';
          break;
        }
      }
      os << '}';
      series_sep = ",";
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock{mutex_};
  Snapshot snap;
  for (const auto& entry_ptr : entries_) {
    const Entry& e = *entry_ptr;
    const std::string key = e.name + render_labels(e.labels);
    switch (e.kind) {
      case Kind::Counter: snap[key] = e.counter->value(); break;
      case Kind::Gauge:
        snap[key] = static_cast<std::uint64_t>(e.gauge->value());
        break;
      case Kind::Histogram:
        snap[key + "_count"] = e.histogram->count();
        snap[key + "_sum"] = e.histogram->sum();
        break;
    }
  }
  return snap;
}

}  // namespace omig::obs
