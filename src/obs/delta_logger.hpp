// Periodic snapshot-delta logger for long chaos runs.
//
// A Prometheus scrape needs a server and a scraper; a 10-minute chaos
// soak under `omig_node --serve` just needs a heartbeat in the log. The
// DeltaLogger snapshots the registry on a fixed interval and prints only
// what moved since the previous snapshot, so a quiet system logs nothing
// and a busy one logs a compact per-interval rate line.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <mutex>
#include <ostream>
#include <thread>

#include "obs/metrics.hpp"

namespace omig::obs {

class DeltaLogger {
public:
  /// Does not start logging; call start(). `out` must outlive the logger.
  DeltaLogger(MetricsRegistry& registry, std::ostream& out);
  ~DeltaLogger();

  DeltaLogger(const DeltaLogger&) = delete;
  DeltaLogger& operator=(const DeltaLogger&) = delete;

  /// Spawns the background thread; logs one delta line per interval.
  void start(std::chrono::milliseconds interval);

  /// Stops the background thread (idempotent; also run by the dtor).
  void stop();

  /// One synchronous snapshot-diff-log cycle against the stored baseline.
  /// Returns the number of series that changed. Used by the background
  /// thread and directly by tests (no timing dependence).
  std::size_t log_once();

private:
  void run(std::chrono::milliseconds interval);

  MetricsRegistry& registry_;
  std::ostream& out_;
  Snapshot baseline_;
  std::mutex log_mutex_;  ///< serialises log_once() vs. the thread

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace omig::obs
