// Unified observability layer: a process-wide metrics registry.
//
// The runtime spans threads, processes, and a faultable TCP transport;
// before this layer its telemetry was scattered — LiveSystem atomics,
// fault::Injector tallies, sim-side aggregates — none of it exported.
// This registry is the one source of truth the exporters read: counters,
// gauges, and fixed-bucket power-of-2 latency histograms, all cheap
// enough for the invocation hot path.
//
// Cost discipline: after registration (mutex-guarded, done once per
// metric) every update is a handful of relaxed atomic increments — no
// locks, no allocation, no branches beyond a bucket index. Reads
// (to_json / to_prometheus / snapshot) take the registration mutex only
// to walk the entry list; they never block writers.
//
// Naming scheme (docs/metrics.md): omig_<layer>_<name>_<unit> with
// layer ∈ {sim, runtime, transport, node}; counters end in _total,
// histograms in their unit (_us wall-clock microseconds, _milli
// sim-time milli-units, _bytes sizes).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omig::obs {

/// Monotonic counter. Relaxed atomics: totals are exact, ordering between
/// different metrics is not promised (Prometheus semantics).
class Counter {
public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (e.g. objects currently hosted).
class Gauge {
public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram, HDR-style with power-of-2 bounds:
/// bucket i counts values in (2^(i-1), 2^i] (bucket 0 takes 0 and 1, the
/// last bucket is +Inf). 64 buckets cover the full uint64 range, so a
/// record() is one array index + three relaxed fetch_adds — lock-free,
/// allocation-free, exact under any thread count.
struct HistogramTally;

class Histogram {
public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Folds a single-threaded tally in (one fetch_add per touched bucket).
  void merge(const HistogramTally& tally);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of bucket i (2^i); the last bucket is unbounded and
  /// reports the largest finite bound.
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t i);

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) {
    if (v <= 1) return 0;
    const auto width = static_cast<std::size_t>(std::bit_width(v - 1));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Quantile estimate: the upper bound of the bucket where the q-th
  /// observation falls (conservative — never under-reports a latency).
  /// 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const;

private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Plain (non-atomic) histogram accumulator for single-threaded hot loops
/// that cannot afford even relaxed RMWs — the simulation's invocation
/// path records ~10^6 calls per run. Record into a tally locally, then
/// Histogram::merge() it into the shared registry once per run.
struct HistogramTally {
  std::uint64_t buckets[Histogram::kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void record(std::uint64_t v) {
    ++buckets[Histogram::bucket_index(v)];
    ++count;
    sum += v;
  }
};

/// Prometheus-style labels, e.g. {{"policy", "placement"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Flat view of every scalar the registry holds at one instant; the key
/// is `name{labels}` (histograms contribute `..._count` and `..._sum`).
/// Used by the snapshot-delta logger and by tests asserting deltas.
using Snapshot = std::map<std::string, std::uint64_t>;

/// Registry of named metrics. Registration (counter()/gauge()/histogram())
/// is mutex-guarded and idempotent: the same (name, labels) pair always
/// returns the same object, so independent subsystems — or several
/// LiveSystems in one process — share one process-wide total. Returned
/// references stay valid for the registry's lifetime.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem instruments by default.
  [[nodiscard]] static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const Labels& labels = {});

  /// Prometheus text exposition format (0.0.4): HELP/TYPE per family,
  /// histograms as cumulative `_bucket{le=...}` series + `_sum`/`_count`.
  [[nodiscard]] std::string to_prometheus() const;

  /// One JSON object keyed by family name; each family is an array of
  /// `{"labels": {...}, ...}` series (counters/gauges carry "value",
  /// histograms carry count/sum/p50/p95/p99 and the non-empty buckets).
  /// Compact (no pretty-printing) — meant to be embedded, e.g. into
  /// `omig_sim --json` output as its "metrics" member.
  [[nodiscard]] std::string to_json() const;

  /// Point-in-time flat view for delta logging.
  [[nodiscard]] Snapshot snapshot() const;

  /// Number of registered series (all kinds).
  [[nodiscard]] std::size_t size() const;

private:
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(Kind kind, const std::string& name,
                        const std::string& help, const Labels& labels);

  // The index is keyed by the (name, labels) pair itself, not by a rendered
  // `name{labels}` string, and the comparator is transparent: the hot
  // re-registration path (every LiveSystem construction, every per-run
  // instrumentation setup) looks up with a borrowed KeyView and allocates
  // nothing on a hit.
  using Key = std::pair<std::string, Labels>;
  struct KeyView {
    std::string_view name;
    const Labels* labels;
  };
  struct KeyLess {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const {
      if (const int c = a.first.compare(b.first); c != 0) return c < 0;
      return a.second < b.second;
    }
    bool operator()(const Key& a, const KeyView& b) const {
      if (const int c = std::string_view{a.first}.compare(b.name); c != 0) {
        return c < 0;
      }
      return a.second < *b.labels;
    }
    bool operator()(const KeyView& a, const Key& b) const {
      if (const int c = a.name.compare(std::string_view{b.first}); c != 0) {
        return c < 0;
      }
      return *a.labels < b.second;
    }
  };

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::map<Key, std::size_t, KeyLess> index_;  ///< (name, labels) → entry
};

/// Renders `{a="x",b="y"}` (empty string for no labels); values are
/// escaped per the Prometheus text format.
[[nodiscard]] std::string render_labels(const Labels& labels);

}  // namespace omig::obs
