#include "obs/delta_logger.hpp"

namespace omig::obs {

DeltaLogger::DeltaLogger(MetricsRegistry& registry, std::ostream& out)
    : registry_{registry}, out_{out}, baseline_{registry.snapshot()} {}

DeltaLogger::~DeltaLogger() { stop(); }

void DeltaLogger::start(std::chrono::milliseconds interval) {
  stop();
  {
    std::lock_guard lock{wake_mutex_};
    stopping_ = false;
  }
  thread_ = std::thread{[this, interval] { run(interval); }};
}

void DeltaLogger::stop() {
  {
    std::lock_guard lock{wake_mutex_};
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t DeltaLogger::log_once() {
  std::lock_guard lock{log_mutex_};
  Snapshot current = registry_.snapshot();
  std::string line;
  std::size_t changed = 0;
  for (const auto& [key, value] : current) {
    auto it = baseline_.find(key);
    const std::uint64_t before = it == baseline_.end() ? 0 : it->second;
    if (value == before) continue;
    if (changed > 0) line += ' ';
    // Counters only grow, but gauges may shrink between snapshots.
    if (value >= before) {
      line += key + "+=" + std::to_string(value - before);
    } else {
      line += key + "-=" + std::to_string(before - value);
    }
    ++changed;
  }
  if (changed > 0) out_ << "[metrics] " << line << '\n' << std::flush;
  baseline_ = std::move(current);
  return changed;
}

void DeltaLogger::run(std::chrono::milliseconds interval) {
  std::unique_lock lock{wake_mutex_};
  while (!stopping_) {
    if (wake_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    log_once();
    lock.lock();
  }
}

}  // namespace omig::obs
