// Mailbox is header-only; this translation unit anchors the library.
#include "runtime/mailbox.hpp"

namespace omig::runtime {
// No out-of-line definitions needed.
}  // namespace omig::runtime
