// Message types are header-only; this translation unit anchors the library.
#include "runtime/message.hpp"

namespace omig::runtime {
// No out-of-line definitions needed.
}  // namespace omig::runtime
