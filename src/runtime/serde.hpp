// Byte-level linearisation of live-object state.
//
// Section 3.1: proxies "trap, linearize and forward" — the live runtime
// does it for real: an evicted object's state is encoded into a length-
// prefixed byte stream and rebuilt at the destination node. The format is
// deliberately simple (little-endian u32 lengths) and strictly validated:
// decode never reads past the buffer and rejects trailing garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "runtime/message.hpp"

namespace omig::runtime {

/// Encodes `state` as: u32 type-length, type bytes, u32 field-count, then
/// per field u32 key-length, key, u32 value-length, value.
std::vector<std::uint8_t> encode(const ObjectState& state);

/// Decodes a buffer produced by `encode`. Returns nullopt on any
/// malformation: truncation, overlong lengths, or trailing bytes.
std::optional<ObjectState> decode(std::span<const std::uint8_t> bytes);

}  // namespace omig::runtime
