#include "runtime/live_node.hpp"

#include "obs/families.hpp"
#include "runtime/serde.hpp"
#include "util/assert.hpp"

namespace omig::runtime {

namespace {
/// Bound on the seq-keyed reply caches. Retransmissions arrive within a
/// few retry rounds of the original, so a few thousand entries is a
/// comfortable at-most-once window without unbounded growth.
constexpr std::size_t kReplyCacheSize = 4096;
}  // namespace

LiveNode::LiveNode(
    std::size_t id,
    const std::unordered_map<std::string, ObjectFactory>* factories)
    : id_{id}, factories_{factories} {
  OMIG_REQUIRE(factories != nullptr, "node needs a factory registry");
}

LiveNode::~LiveNode() { stop(); }

std::size_t LiveNode::preload_from_store() {
  OMIG_REQUIRE(store_ != nullptr, "attach a store before preloading");
  std::lock_guard lock{lifecycle_mutex_};
  OMIG_REQUIRE(!thread_.joinable(), "preload before start()");
  std::size_t restored = 0;
  for (const auto& [name, obj] : store_->view()) {
    if (obj.state.empty()) continue;  // location-only record
    const auto state = decode(obj.state);
    if (!state.has_value()) continue;  // unreadable checkpoint: skip
    auto fit = factories_->find(state->type);
    if (fit == factories_->end()) continue;
    objects_[name] = fit->second(name, *state);
    ++restored;
  }
  hosted_.store(restored);
  obs::node_metrics().hosted_objects->add(static_cast<std::int64_t>(restored));
  return restored;
}

void LiveNode::start() {
  std::lock_guard lock{lifecycle_mutex_};
  if (thread_.joinable()) return;  // already running: idempotent
  if (mailbox_.closed()) mailbox_.reopen();
  thread_ = std::thread{[this] { run(); }};
}

void LiveNode::stop() {
  std::lock_guard lock{lifecycle_mutex_};
  if (!thread_.joinable()) return;  // already stopped: idempotent
  // Close first so no message can slip in behind the shutdown: the loop
  // drains what is already queued, then pop() signals exhaustion.
  mailbox_.close();
  thread_.join();
}

void LiveNode::crash() {
  std::lock_guard lock{lifecycle_mutex_};
  if (!thread_.joinable()) return;
  // Queued messages die undelivered; their promises break, which is how
  // senders observe the failure.
  mailbox_.close_and_discard();
  thread_.join();
  obs::node_metrics().hosted_objects->sub(
      static_cast<std::int64_t>(hosted_.load()));
  // Volatile node state is lost with the process.
  objects_.clear();
  installed_seq_.clear();
  invoke_replies_.clear();
  invoke_order_.clear();
  evicted_states_.clear();
  evict_order_.clear();
  dir_entries_.clear();
  hosted_.store(0);
  dir_entry_count_.store(0);
}

void LiveNode::restart() {
  std::lock_guard lock{lifecycle_mutex_};
  if (thread_.joinable()) return;  // still running: nothing to do
  mailbox_.reopen();
  thread_ = std::thread{[this] { run(); }};
}

bool LiveNode::running() const {
  std::lock_guard lock{lifecycle_mutex_};
  return thread_.joinable() && !mailbox_.closed();
}

void LiveNode::run() {
  for (;;) {
    auto msg = mailbox_.pop();
    if (!msg) return;
    processed_.fetch_add(1, std::memory_order_relaxed);
    bool stop = false;
    std::visit(
        [&](auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, MsgStop>) {
            stop = true;
          } else {
            handle(m);
          }
        },
        *msg);
    if (stop) return;
  }
}

template <class V>
void LiveNode::remember(std::unordered_map<std::uint64_t, V>& cache,
                        std::deque<std::uint64_t>& order, std::uint64_t seq,
                        V value) {
  if (cache.emplace(seq, std::move(value)).second) {
    order.push_back(seq);
    if (order.size() > kReplyCacheSize) {
      cache.erase(order.front());
      order.pop_front();
    }
  }
}

void LiveNode::handle(MsgInvoke& msg) {
  obs::node_metrics().invokes->inc();
  if (msg.seq != 0) {
    auto cached = invoke_replies_.find(msg.seq);
    if (cached != invoke_replies_.end()) {
      // Retransmission of a request we already executed: answer from the
      // cache, never run the method twice.
      deduped_.fetch_add(1, std::memory_order_relaxed);
      obs::node_metrics().dedup_hits->inc();
      msg.reply.set_value(cached->second);
      return;
    }
  }
  InvokeResult result;
  auto it = objects_.find(msg.object);
  if (it == objects_.end()) {
    result = InvokeResult{false, "object not resident: " + msg.object};
  } else {
    result = it->second->call(msg.method, msg.argument);
  }
  if (msg.seq != 0) {
    remember(invoke_replies_, invoke_order_, msg.seq, result);
  }
  msg.reply.set_value(std::move(result));
}

void LiveNode::handle(MsgInstall& msg) {
  obs::node_metrics().installs->inc();
  if (msg.seq != 0) {
    auto seen = installed_seq_.find(msg.name);
    if (seen != installed_seq_.end() && seen->second == msg.seq) {
      // Duplicate of an install we already applied: just acknowledge.
      deduped_.fetch_add(1, std::memory_order_relaxed);
      obs::node_metrics().dedup_hits->inc();
      msg.done.set_value(true);
      return;
    }
  }
  auto fit = factories_->find(msg.state.type);
  if (fit == factories_->end()) {
    msg.done.set_value(false);
    return;
  }
  if (store_ != nullptr) {
    // WAL first, ack second: once the sender sees `true`, this install
    // survives SIGKILL. A dead store (injected power loss) refuses the
    // install outright — the sender retries against the relaunch.
    const auto outcome =
        store_->checkpoint(msg.name, id_, 0, encode(msg.state));
    if (!outcome.applied) {
      msg.done.set_value(false);
      return;
    }
  }
  objects_[msg.name] = fit->second(msg.name, std::move(msg.state));
  if (msg.seq != 0) installed_seq_[msg.name] = msg.seq;
  hosted_.fetch_add(1, std::memory_order_relaxed);
  obs::node_metrics().hosted_objects->add(1);
  msg.done.set_value(true);
}

void LiveNode::handle(MsgDirLookup& msg) {
  // Read-only and idempotent: no dedup needed. Answers from whatever this
  // node serves — its shard slice or a forwarding hint left behind by a
  // departed object; both live in the same table.
  auto it = dir_entries_.find(msg.name);
  if (it == dir_entries_.end()) {
    msg.reply.set_value(DirReply{false, 0});
    return;
  }
  msg.reply.set_value(DirReply{true, it->second});
}

void LiveNode::handle(MsgDirUpdate& msg) {
  // Idempotent: the update carries the absolute new value (or drops the
  // entry), so a retransmission converges to the same state.
  if (msg.invalidate) {
    dir_entries_.erase(msg.name);
  } else {
    dir_entries_[msg.name] = msg.node;
  }
  dir_entry_count_.store(dir_entries_.size(), std::memory_order_relaxed);
  msg.done.set_value(DirAck{true});
}

void LiveNode::handle(MsgEvict& msg) {
  obs::node_metrics().evicts->inc();
  if (msg.seq != 0) {
    auto cached = evicted_states_.find(msg.seq);
    if (cached != evicted_states_.end()) {
      // Duplicate evict: the object is already gone — hand out the state
      // captured by the first delivery.
      deduped_.fetch_add(1, std::memory_order_relaxed);
      obs::node_metrics().dedup_hits->inc();
      msg.state.set_value(cached->second);
      return;
    }
  }
  auto it = objects_.find(msg.name);
  if (it == objects_.end()) {
    msg.state.set_value(ObjectState{});  // empty type signals failure
    return;
  }
  ObjectState state = it->second->linearize();
  objects_.erase(it);
  hosted_.fetch_sub(1, std::memory_order_relaxed);
  obs::node_metrics().hosted_objects->sub(1);
  if (store_ != nullptr) {
    // Recorded before the state leaves this node: a relaunch must not
    // resurrect an object the coordinator already pulled away (the
    // directory, not this store, is the arbiter of its new home).
    (void)store_->evict(msg.name);
  }
  if (msg.seq != 0) {
    remember(evicted_states_, evict_order_, msg.seq, state);
  }
  msg.state.set_value(std::move(state));
}

}  // namespace omig::runtime
