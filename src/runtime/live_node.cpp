#include "runtime/live_node.hpp"

#include "util/assert.hpp"

namespace omig::runtime {

LiveNode::LiveNode(
    std::size_t id,
    const std::unordered_map<std::string, ObjectFactory>* factories)
    : id_{id}, factories_{factories} {
  OMIG_REQUIRE(factories != nullptr, "node needs a factory registry");
}

LiveNode::~LiveNode() { stop(); }

void LiveNode::start() {
  OMIG_REQUIRE(!thread_.joinable(), "node already started");
  thread_ = std::thread{[this] { run(); }};
}

void LiveNode::stop() {
  if (!thread_.joinable()) return;
  mailbox_.push(Message{MsgStop{}});
  mailbox_.close();
  thread_.join();
}

void LiveNode::run() {
  for (;;) {
    auto msg = mailbox_.pop();
    if (!msg) return;
    processed_.fetch_add(1, std::memory_order_relaxed);
    bool stop = false;
    std::visit(
        [&](auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, MsgStop>) {
            stop = true;
          } else {
            handle(m);
          }
        },
        *msg);
    if (stop) return;
  }
}

void LiveNode::handle(MsgInvoke& msg) {
  auto it = objects_.find(msg.object);
  if (it == objects_.end()) {
    msg.reply.set_value(
        InvokeResult{false, "object not resident: " + msg.object});
    return;
  }
  msg.reply.set_value(it->second->call(msg.method, msg.argument));
}

void LiveNode::handle(MsgInstall& msg) {
  auto fit = factories_->find(msg.state.type);
  if (fit == factories_->end()) {
    msg.done.set_value(false);
    return;
  }
  objects_[msg.name] = fit->second(msg.name, std::move(msg.state));
  hosted_.fetch_add(1, std::memory_order_relaxed);
  msg.done.set_value(true);
}

void LiveNode::handle(MsgEvict& msg) {
  auto it = objects_.find(msg.name);
  if (it == objects_.end()) {
    msg.state.set_value(ObjectState{});  // empty type signals failure
    return;
  }
  ObjectState state = it->second->linearize();
  objects_.erase(it);
  hosted_.fetch_sub(1, std::memory_order_relaxed);
  msg.state.set_value(std::move(state));
}

}  // namespace omig::runtime
