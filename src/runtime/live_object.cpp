#include "runtime/live_object.hpp"

namespace omig::runtime {

LiveObject::LiveObject(std::string name, ObjectState state)
    : name_{std::move(name)}, state_{std::move(state)} {}

void LiveObject::register_method(const std::string& name, Method method) {
  methods_[name] = std::move(method);
}

InvokeResult LiveObject::call(const std::string& method,
                              const std::string& argument) {
  auto it = methods_.find(method);
  if (it == methods_.end()) {
    return InvokeResult{false, "no such method: " + method};
  }
  return InvokeResult{true, it->second(state_, argument)};
}

}  // namespace omig::runtime
