#include "runtime/live_system.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "obs/families.hpp"
#include "runtime/serde.hpp"
#include "trace/log.hpp"
#include "transport/bridge.hpp"
#include "transport/node_server.hpp"
#include "transport/async_tcp_transport.hpp"
#include "transport/tcp_transport.hpp"
#include "util/assert.hpp"

namespace omig::runtime {

namespace {
/// Wall-clock microseconds since `start`, for the latency histograms.
std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

/// Monotonic milliseconds, the stamp the lease-TTL strategy ages by.
std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

const char* to_string(MovePolicy policy) {
  switch (policy) {
    case MovePolicy::Conventional: return "conventional";
    case MovePolicy::Placement: return "placement";
    case MovePolicy::Adaptive: return "adaptive";
    case MovePolicy::AdaptiveLoad: return "adaptive-load";
  }
  return "?";
}

MovePolicy move_policy_from_string(const std::string& name) {
  if (name == "conventional") return MovePolicy::Conventional;
  if (name == "placement") return MovePolicy::Placement;
  if (name == "adaptive") return MovePolicy::Adaptive;
  if (name == "adaptive-load") return MovePolicy::AdaptiveLoad;
  throw std::invalid_argument{
      "unknown move policy '" + name +
      "' (expected conventional|placement|adaptive|adaptive-load)"};
}

LiveSystem::LiveSystem(Options options) : options_{std::move(options)} {
  OMIG_REQUIRE(options_.nodes >= 1 || remote(), "need at least one node");
  OMIG_REQUIRE(options_.max_retries >= 0, "max_retries must be >= 0");
}

LiveSystem::~LiveSystem() { stop(); }

void LiveSystem::register_type(const std::string& type,
                               ObjectFactory factory) {
  OMIG_REQUIRE(!started_, "register types before start()");
  factories_[type] = std::move(factory);
}

void LiveSystem::start() {
  OMIG_REQUIRE(!started_, "system already started");
  const std::size_t count =
      remote() ? options_.remote_nodes.size() : options_.nodes;
  for (const fault::CrashEvent& crash : options_.fault_plan.crashes) {
    OMIG_REQUIRE(crash.node < count,
                 "crash schedule names a node outside the system");
  }
  if (!remote()) {
    nodes_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      nodes_.push_back(std::make_unique<LiveNode>(i, &factories_));
      nodes_.back()->start();
    }
  }
  node_down_.assign(count, 0);
  dir_shards_ = options_.dir_shards != 0 ? options_.dir_shards : count;
  if (sharded()) {
    // One lookup cache per origin; the extra slot serves external callers.
    caches_.clear();
    caches_.reserve(count + 1);
    for (std::size_t i = 0; i <= count; ++i) {
      caches_.push_back(std::make_unique<objsys::NamedLocationCache>());
    }
  }
  if (!options_.fault_plan.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(options_.fault_plan);
  }
  if (adaptive_policy()) {
    locality_ =
        std::make_unique<objsys::LocalityTracker>(count, options_.ema_decay);
    policy_obs_ = obs::policy_metrics(to_string(options_.policy));
  }

  // All inter-node traffic goes through one transport; faults inject at
  // this seam, so the same FaultPlan drives every backend identically.
  if (remote() || options_.transport != TransportKind::InProc) {
    const bool async = options_.transport == TransportKind::AsyncTcp;
    if (async) {
      // One proactor loop carries the whole process: every NodeServer's
      // accept/read/write and the client transport's connections.
      net_loop_ = std::make_unique<net::EventLoop>();
      net_loop_->start();
    }
    std::vector<transport::Peer> peers;
    if (remote()) {
      peers = options_.remote_nodes;
    } else {
      // Local TCP: every node gets a loopback frame server bridging onto
      // its mailbox, and traffic takes the full marshalling round trip.
      servers_.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        Mailbox<Message>& box = nodes_[i]->mailbox();
        // One handler strand per server: the node's mailbox serialises
        // request execution anyway, so extra strands buy nothing here.
        servers_.push_back(std::make_unique<transport::NodeServer>(
            [&box](transport::Frame frame) {
              return transport::serve_on_mailbox(box, std::move(frame));
            },
            net_loop_.get(), /*handler_threads=*/1));
        const std::uint16_t port = servers_.back()->start();
        OMIG_REQUIRE(port != 0, "could not bind a loopback listener");
        peers.push_back(transport::Peer{"127.0.0.1", port});
      }
    }
    if (async) {
      transport::AsyncTcpTransport::Options topts;
      topts.peers = std::move(peers);
      topts.max_connect_attempts = options_.tcp_connect_attempts;
      topts.connect_backoff = options_.tcp_connect_backoff;
      topts.loop = net_loop_.get();
      auto tcp = std::make_unique<transport::AsyncTcpTransport>(
          std::move(topts), injector_.get());
      tcp_ = tcp.get();
      transport_ = std::move(tcp);
    } else {
      transport::TcpTransport::Options topts;
      topts.peers = std::move(peers);
      topts.max_connect_attempts = options_.tcp_connect_attempts;
      topts.connect_backoff = options_.tcp_connect_backoff;
      auto tcp = std::make_unique<transport::TcpTransport>(std::move(topts),
                                                           injector_.get());
      tcp_ = tcp.get();
      transport_ = std::move(tcp);
    }
  } else {
    transport_ = std::make_unique<transport::InProcTransport>(
        [this](std::size_t to) {
          return to < nodes_.size() ? &nodes_[to]->mailbox() : nullptr;
        },
        injector_.get());
  }

  if (!options_.data_dir.empty()) {
    // The coordinator's own store. Its identity for disk-fault rules is
    // kExternalSender: wildcard rules reach it, rules naming a concrete
    // node target only that node's store.
    store_ = std::make_unique<store::DurableStore>();
    store::DurableStore::OpenOptions sopts;
    sopts.dir = options_.data_dir;
    sopts.compact_every = options_.store_compact_every;
    sopts.injector = injector_.get();
    sopts.node = kExternalSender;
    OMIG_REQUIRE(store_->open(std::move(sopts)),
                 "could not open the data-dir store");
    recover_from_store();
  }

  started_ = true;
  if (!options_.fault_plan.crashes.empty()) {
    fault_thread_ = std::thread{[this] { run_fault_schedule(); }};
  }
}

void LiveSystem::recover_from_store() {
  for (const auto& [name, obj] : store_->view()) {
    if (obj.state.empty()) continue;  // location knowledge only, no state
    const auto state = decode(obj.state);
    if (!state.has_value() || !factories_.contains(state->type)) continue;
    const auto node = static_cast<std::size_t>(obj.node);
    if (node >= node_count()) continue;
    {
      std::lock_guard lock{mutex_};
      Meta meta;
      meta.node = node;
      meta.checkpoint = *state;
      meta.moves = obj.cursor;
      meta.durable = true;
      directory_[name] = std::move(meta);
    }
    if (install_with_retry(node, name, *state, kExternalSender)) {
      replayed_objects_.fetch_add(1, std::memory_order_relaxed);
      if (sharded()) dir_publish_move(name, node, node);
    }
  }
}

void LiveSystem::stop() {
  std::lock_guard stop_lock{stop_mutex_};
  {
    std::lock_guard lock{fault_mutex_};
    shutting_down_ = true;
  }
  fault_cv_.notify_all();
  if (fault_thread_.joinable()) fault_thread_.join();
  for (auto& node : nodes_) node->stop();
  // Servers after nodes: any handler still awaiting a reply gets its
  // promise broken by the node teardown and unblocks immediately.
  for (auto& server : servers_) server->stop();
  // Final compaction: fold the WAL into one snapshot so the next start()
  // recovers from a single file. Best-effort — a dead store skips it.
  if (store_ != nullptr) (void)store_->compact();
}

void LiveSystem::run_fault_schedule() {
  using Clock = std::chrono::steady_clock;
  struct Event {
    Clock::time_point at;
    std::size_t node;
    bool up;
  };
  const Clock::time_point t0 = Clock::now();
  auto after = [&](double millis) {
    return t0 + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>{millis});
  };
  std::vector<Event> schedule;
  for (const fault::CrashEvent& crash : options_.fault_plan.crashes) {
    schedule.push_back({after(crash.at), crash.node, false});
    if (crash.restarts()) {
      schedule.push_back({after(crash.at + crash.restart_after), crash.node,
                          true});
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Event& a, const Event& b) { return a.at < b.at; });
  std::unique_lock lock{fault_mutex_};
  for (const Event& event : schedule) {
    if (fault_cv_.wait_until(lock, event.at, [&] { return shutting_down_; })) {
      return;  // system is stopping: abandon the rest of the schedule
    }
    lock.unlock();
    if (event.up) {
      restart_node(event.node);
    } else {
      crash_node(event.node);
    }
    lock.lock();
  }
}

bool LiveSystem::sent_ok(transport::SendStatus status) {
  if (status == transport::SendStatus::Ok) return true;
  // The endpoint rejected the message outright (closed mailbox, connection
  // reset, unreachable peer): no delivery was attempted, so the retry
  // layer can count the rejection instead of inferring it from a broken
  // promise.
  send_rejections_.fetch_add(1, std::memory_order_relaxed);
  obs::runtime_metrics().send_rejections->inc();
  return false;
}

template <class T>
std::optional<T> LiveSystem::await_reply(std::future<T>& reply) {
  try {
    if (options_.reply_timeout.count() > 0) {
      if (reply.wait_for(options_.reply_timeout) !=
          std::future_status::ready) {
        return std::nullopt;
      }
    }
    return reply.get();
  } catch (const std::future_error&) {
    // The message died unprocessed — dropped by the injector, discarded by
    // a crash, or lost with a connection reset.
    return std::nullopt;
  }
}

void LiveSystem::backoff(int attempt) {
  if (options_.retry_backoff.count() <= 0) return;
  const int shift = std::min(attempt - 1, 6);
  std::this_thread::sleep_for(options_.retry_backoff * (1 << shift));
}

bool LiveSystem::faults_active() const {
  return injector_ != nullptr ||
         crashes_.load(std::memory_order_relaxed) > 0;
}

bool LiveSystem::install_with_retry(std::size_t node, const std::string& name,
                                    const ObjectState& state,
                                    std::size_t from) {
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  transport::WireInstall msg;
  msg.seq = seq;
  msg.name = name;
  msg.state = state;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      obs::runtime_metrics().retries->inc();
      backoff(attempt);
    }
    std::future<bool> done;
    if (!sent_ok(transport_->send_install(from, node, msg, done))) {
      continue;  // node is down; it may restart within the retry budget
    }
    auto ok = await_reply(done);
    if (ok.has_value()) return *ok;
  }
  return false;
}

bool LiveSystem::create(const std::string& name, ObjectState state,
                        std::size_t node) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(node < node_count(), "node index out of range");
  if (!factories_.contains(state.type)) return false;
  {
    std::lock_guard lock{mutex_};
    if (directory_.contains(name)) return false;
    Meta meta;
    meta.node = node;
    meta.checkpoint = state;  // creation-time recovery checkpoint
    directory_[name] = std::move(meta);
    trace_locked(trace::EventKind::ReplicaCreated, name, node);
  }
  const bool ok = install_with_retry(node, name, state, kExternalSender);
  if (!ok) {
    std::lock_guard lock{mutex_};
    directory_.erase(name);
    return false;
  }
  // Seed the shard owner's slice (and a self-entry at the host, so a
  // forwarding chase arriving here resolves instead of running dry).
  if (sharded()) dir_publish_move(name, node, node);
  if (store_ != nullptr) {
    // Persist the creation checkpoint; only a fsynced append upgrades the
    // entry to durable (an injected fsync failure leaves it in-memory).
    const auto outcome = store_->checkpoint(name, node, 0, encode(state));
    if (outcome.durable) {
      std::lock_guard lock{mutex_};
      auto it = directory_.find(name);
      if (it != directory_.end()) it->second.durable = true;
    }
  }
  return true;
}

std::optional<std::size_t> LiveSystem::location(
    const std::string& name) const {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  if (it == directory_.end()) return std::nullopt;
  return it->second.node;
}

InvokeResult LiveSystem::invoke(const std::string& object,
                                const std::string& method,
                                const std::string& argument) {
  return invoke_impl(std::nullopt, object, method, argument);
}

InvokeResult LiveSystem::invoke_from(std::size_t from,
                                     const std::string& object,
                                     const std::string& method,
                                     const std::string& argument) {
  return invoke_impl(from, object, method, argument);
}

InvokeResult LiveSystem::invoke_impl(std::optional<std::size_t> from,
                                     const std::string& object,
                                     const std::string& method,
                                     const std::string& argument) {
  OMIG_REQUIRE(started_, "start() the system first");
  const auto wall_start = std::chrono::steady_clock::now();
  // Rounds spent on "object not resident". Fault-free this loops only while
  // a migration races the delivery; under faults a recovering object may
  // stay non-resident for a while, so the loop is bounded then.
  int stale_rounds = 0;
  constexpr int kMaxStaleRounds = 64;
  // Sharded mode: a node the previous round found empty — the resolve
  // path invalidates its cache entry and chases the forwarding hints.
  std::optional<std::size_t> stale;
  // The locality EMA counts logical invocations, so feed it once even if
  // stale rounds retry the delivery.
  bool locality_recorded = false;
  for (;;) {
    std::size_t node;
    {
      std::unique_lock lock{mutex_};
      auto it = directory_.find(object);
      if (it == directory_.end()) {
        return InvokeResult{false, "unknown object: " + object};
      }
      // "The call is blocked until the object is operational once again."
      transit_cv_.wait(lock, [&] {
        auto cur = directory_.find(object);
        return cur == directory_.end() || !cur->second.in_transit;
      });
      it = directory_.find(object);
      if (it == directory_.end()) {
        return InvokeResult{false, "unknown object: " + object};
      }
      node = it->second.node;
      if (!locality_recorded && from.has_value()) {
        record_locality_locked(object, *from);
        locality_recorded = true;
      }
    }
    if (sharded()) {
      node = resolve_sharded(from, object, stale);
      stale.reset();
    }
    invocations_.fetch_add(1, std::memory_order_relaxed);
    const bool remote_call = !from.has_value() || *from != node;
    (remote_call ? obs::runtime_metrics().invocations_remote
                 : obs::runtime_metrics().invocations_local)
        ->inc();
    if (remote_call) {
      remote_.fetch_add(1, std::memory_order_relaxed);
      if (options_.remote_latency.count() > 0) {
        std::this_thread::sleep_for(options_.remote_latency);
      }
    }
    // One logical request: every retransmission reuses this seq, so the
    // hosting node executes the method at most once.
    transport::WireInvoke msg;
    msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    msg.object = object;
    msg.method = method;
    msg.argument = argument;
    std::optional<InvokeResult> result;
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        backoff(attempt);
      }
      std::future<InvokeResult> reply;
      if (!sent_ok(transport_->send_invoke(from.value_or(kExternalSender),
                                           node, msg, reply))) {
        continue;  // node is down; it may restart within the retry budget
      }
      result = await_reply(reply);
      if (result.has_value()) break;
    }
    if (!result.has_value()) {
      return InvokeResult{
          false, "node unreachable: " + std::to_string(node) + " (" + object +
                     ")"};
    }
    if (remote_call && options_.remote_latency.count() > 0) {
      std::this_thread::sleep_for(options_.remote_latency);  // result message
    }
    // A migration can race the delivery: the directory said `node`, but the
    // object was evicted before our message arrived. Retry — this mirrors
    // real systems forwarding calls to the new location. After a crash the
    // object may be awaiting reinstallation, so give recovery time and
    // give up eventually instead of spinning forever.
    if (!result->ok && result->value.starts_with("object not resident")) {
      if (sharded()) stale = node;
      if (faults_active()) {
        if (++stale_rounds > kMaxStaleRounds) return *result;
        backoff(1);
      }
      continue;
    }
    (remote_call ? obs::runtime_metrics().invoke_remote_us
                 : obs::runtime_metrics().invoke_local_us)
        ->record(us_since(wall_start));
    return *result;
  }
}

void LiveSystem::fix(const std::string& name) {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  OMIG_REQUIRE(it != directory_.end(), "fix: unknown object");
  it->second.fixed = true;
  trace_locked(trace::EventKind::Fix, name, kExternalSender);
}

void LiveSystem::unfix(const std::string& name) {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  OMIG_REQUIRE(it != directory_.end(), "unfix: unknown object");
  it->second.fixed = false;
  trace_locked(trace::EventKind::Unfix, name, kExternalSender);
}

bool LiveSystem::is_fixed(const std::string& name) const {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  OMIG_REQUIRE(it != directory_.end(), "is_fixed: unknown object");
  return it->second.fixed;
}

bool LiveSystem::attach(const std::string& a, const std::string& b,
                        const std::string& alliance) {
  if (a == b) return false;
  std::lock_guard lock{mutex_};
  if (!directory_.contains(a) || !directory_.contains(b)) return false;
  auto& ea = attachments_[a];
  if (std::any_of(ea.begin(), ea.end(), [&](const AttachEdge& e) {
        return e.peer == b && e.alliance == alliance;
      })) {
    return false;
  }
  ea.push_back(AttachEdge{b, alliance});
  attachments_[b].push_back(AttachEdge{a, alliance});
  return true;
}

bool LiveSystem::detach(const std::string& a, const std::string& b) {
  std::lock_guard lock{mutex_};
  auto erase = [&](const std::string& from, const std::string& peer) {
    auto it = attachments_.find(from);
    if (it == attachments_.end()) return false;
    const auto before = it->second.size();
    std::erase_if(it->second,
                  [&](const AttachEdge& e) { return e.peer == peer; });
    return it->second.size() != before;
  };
  const bool removed = erase(a, b);
  erase(b, a);
  return removed;
}

std::vector<std::string> LiveSystem::closure_locked(
    const std::string& object, const std::string& alliance) const {
  const bool restrict = options_.a_transitive_attachments && !alliance.empty();
  std::vector<std::string> out;
  std::unordered_set<std::string> seen{object};
  std::deque<std::string> frontier{object};
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    auto it = attachments_.find(cur);
    if (it == attachments_.end()) continue;
    for (const AttachEdge& e : it->second) {
      if (restrict && e.alliance != alliance) continue;
      if (seen.insert(e.peer).second) frontier.push_back(e.peer);
    }
  }
  return out;
}

std::size_t LiveSystem::relocate(const std::vector<std::string>& objects,
                                 std::size_t dest) {
  std::size_t moved = 0;
  for (const std::string& name : objects) {
    const auto wall_start = std::chrono::steady_clock::now();
    std::size_t src;
    {
      std::lock_guard lock{mutex_};
      src = directory_.at(name).node;
    }
    if (src == dest) {
      std::lock_guard lock{mutex_};
      directory_.at(name).in_transit = false;
      trace_locked(trace::EventKind::MigrationEnd, name, dest);
      continue;
    }

    // Pull the state off the source; the request travels dest -> src. A
    // dead source ends the attempts early — recovery takes over below.
    std::optional<ObjectState> state;
    transport::WireEvict evict;
    evict.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    evict.name = name;
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        backoff(attempt);
      }
      std::future<ObjectState> state_future;
      if (!sent_ok(transport_->send_evict(dest, src, evict, state_future))) {
        break;
      }
      auto got = await_reply(state_future);
      if (got.has_value()) {
        state = std::move(*got);
        break;
      }
    }

    if (!state.has_value() || state->type.empty()) {
      // The source is unreachable or lost the object with a crash: recover
      // the last checkpoint. Degraded mode — updates since the checkpoint
      // are gone, but the object itself survives (docs/fault_model.md).
      std::lock_guard lock{mutex_};
      state = directory_.at(name).checkpoint;
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      obs::runtime_metrics().recoveries->inc();
    }
    OMIG_ASSERT(!state->type.empty());

    // Linearise for the wire (Section 3.1) — the destination rebuilds the
    // object from bytes, never from shared memory.
    const std::vector<std::uint8_t> wire = encode(*state);
    if (options_.remote_latency.count() > 0) {
      std::this_thread::sleep_for(options_.remote_latency);  // transfer
    }
    auto decoded = decode(wire);
    OMIG_ASSERT(decoded.has_value());

    {
      // The state now in flight becomes the object's recovery checkpoint.
      std::lock_guard lock{mutex_};
      directory_.at(name).checkpoint = *decoded;
    }

    std::size_t target = dest;
    if (!install_with_retry(dest, name, *decoded, src)) {
      // Destination died mid-move: put the object back on the source. If
      // that is down too, the directory entry plus checkpoint let restart
      // reconciliation revive it there — the object is never lost.
      install_with_retry(src, name, *decoded, dest);
      target = src;
    }

    std::uint64_t cursor = 0;
    {
      std::lock_guard lock{mutex_};
      Meta& meta = directory_.at(name);
      meta.node = target;
      meta.in_transit = false;
      if (target != src) cursor = ++meta.moves;
      trace_locked(trace::EventKind::MigrationEnd, name, target);
    }
    if (sharded() && target != src) dir_publish_move(name, src, target);
    if (store_ != nullptr && target != src) {
      // Log the location change, then checkpoint the in-flight state under
      // the new home — both fsynced before relocate() acks the migration,
      // so no acked migration is ever lost (docs/durability.md).
      (void)store_->migration(name, src, target);
      const auto outcome =
          store_->checkpoint(name, target, cursor, encode(*decoded));
      std::lock_guard lock{mutex_};
      auto it = directory_.find(name);
      if (it != directory_.end()) it->second.durable = outcome.durable;
    }
    if (target == dest) {
      migrations_.fetch_add(1, std::memory_order_relaxed);
      obs::runtime_metrics().migrations->inc();
      obs::runtime_metrics().migration_us->record(us_since(wall_start));
      ++moved;
    }
  }
  transit_cv_.notify_all();
  return moved;
}

bool LiveSystem::migrate(const std::string& object, std::size_t dest,
                         const std::string& alliance) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(dest < node_count(), "node index out of range");
  std::vector<std::string> to_move;
  {
    std::unique_lock lock{mutex_};
    if (!directory_.contains(object)) return false;
    for (const std::string& name : closure_locked(object, alliance)) {
      Meta& meta = directory_.at(name);
      // Wait out concurrent transits of this member, then claim it.
      transit_cv_.wait(lock,
                       [&] { return !directory_.at(name).in_transit; });
      if (meta.fixed) continue;
      meta.in_transit = true;
      trace_locked(trace::EventKind::MigrationStart, name, dest);
      to_move.push_back(name);
    }
  }
  relocate(to_move, dest);
  return true;
}

LiveSystem::MoveToken LiveSystem::visit(const std::string& object,
                                        std::size_t dest,
                                        const std::string& alliance) {
  MoveToken token = move(object, dest, alliance);
  token.visit = true;
  return token;
}

LiveSystem::MoveToken LiveSystem::move(const std::string& object,
                                       std::size_t dest,
                                       const std::string& alliance) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(dest < node_count(), "node index out of range");
  MoveToken token;
  std::vector<std::string> to_move;
  {
    std::unique_lock lock{mutex_};
    auto it = directory_.find(object);
    if (it == directory_.end()) return token;  // not granted
    token.id = next_token_++;
    trace_locked(trace::EventKind::BlockBegin, object, dest, token.id);

    // The adaptive kinds treat `dest` as advisory: the closure relocates
    // to the EMA's choice (the current host when the telemetry says stay,
    // which relocate() resolves as a no-op), under placement locking.
    std::size_t target = dest;

    if (options_.policy != MovePolicy::Conventional) {
      // A lock whose lease ran out belongs to a block that died (node
      // crash) or stalled past its budget: release everything it holds —
      // the objects stay in place — and let this move proceed.
      if (lease_expired(it->second)) expire_lease(it->second.locked_by);
      // Transient placement: a conflicting unfinished move refuses us.
      if (it->second.locked_by != 0 || it->second.fixed) {
        refused_.fetch_add(1, std::memory_order_relaxed);
        obs::runtime_metrics().refused_moves->inc();
        trace_locked(trace::EventKind::MoveRefused, object, dest, token.id);
        return token;  // granted = false: caller invokes remotely
      }
      if (adaptive_policy()) {
        target = adaptive_target_locked(object, alliance);
      }
      const auto lease_deadline =
          std::chrono::steady_clock::now() + options_.lock_lease;
      for (const std::string& name : closure_locked(object, alliance)) {
        Meta& meta = directory_.at(name);
        if (lease_expired(meta)) expire_lease(meta.locked_by);
        if (meta.locked_by != 0) continue;  // partial move
        meta.locked_by = token.id;
        meta.lease_expiry = lease_deadline;
        obs::runtime_metrics().lease_acquisitions->inc();
        if (store_ != nullptr) {
          // Audit record, unsynced: lease grants ride on the next synced
          // append (recovery never restores leases — they expire).
          (void)store_->lease(name, token.id);
        }
        token.locked.push_back(name);
        trace_locked(trace::EventKind::Lock, name, target, token.id);
        transit_cv_.wait(lock,
                         [&] { return !directory_.at(name).in_transit; });
        if (meta.fixed) continue;
        meta.in_transit = true;
        trace_locked(trace::EventKind::MigrationStart, name, target,
                     token.id);
        to_move.push_back(name);
      }
    } else {
      // Conventional: always migrate, no locks.
      for (const std::string& name : closure_locked(object, alliance)) {
        Meta& meta = directory_.at(name);
        transit_cv_.wait(lock,
                         [&] { return !directory_.at(name).in_transit; });
        if (meta.fixed) continue;
        meta.in_transit = true;
        trace_locked(trace::EventKind::MigrationStart, name, dest, token.id);
        to_move.push_back(name);
      }
    }
    token.granted = true;
    for (const std::string& name : to_move) {
      token.origins.emplace_back(name, directory_.at(name).node);
    }
    dest = target;
  }
  relocate(to_move, dest);
  return token;
}

void LiveSystem::record_locality_locked(const std::string& object,
                                        std::size_t from) {
  if (locality_ == nullptr || from >= node_count()) return;
  auto [it, inserted] = locality_ids_.try_emplace(
      object, static_cast<std::uint32_t>(locality_ids_.size()));
  locality_->record(objsys::ObjectId{it->second},
                    objsys::NodeId{static_cast<std::uint32_t>(from)});
  ema_updates_.fetch_add(1, std::memory_order_relaxed);
  policy_obs_->ema_updates->inc();
}

std::size_t LiveSystem::adaptive_target_locked(const std::string& object,
                                               const std::string& alliance) {
  const Meta& meta = directory_.at(object);
  const std::size_t host = meta.node;
  const auto id_it = locality_ids_.find(object);
  if (id_it == locality_ids_.end()) return host;  // never invoked: no data
  const objsys::LocalityEstimate est = locality_->estimate(
      objsys::ObjectId{id_it->second},
      objsys::NodeId{static_cast<std::uint32_t>(host)});
  if (!est.dominant.valid() || est.dominant.value() == host) return host;
  if (est.weight < options_.adaptive_min_weight ||
      est.share - est.host_share < options_.hysteresis_band) {
    policy_suppressed_hysteresis_.fetch_add(1, std::memory_order_relaxed);
    policy_obs_->suppressed_hysteresis->inc();
    return host;
  }
  const std::size_t dest = est.dominant.value();
  if (options_.policy == MovePolicy::AdaptiveLoad) {
    std::size_t at_dest = 0;
    for (const auto& [name, m] : directory_) at_dest += m.node == dest;
    const std::size_t cluster = closure_locked(object, alliance).size();
    // Mean hosted objects per node, floored at 1 — same sparse-population
    // rule as the simulator policy (src/migration/policy_adaptive.cpp).
    const double mean =
        std::max(1.0, static_cast<double>(directory_.size()) /
                          static_cast<double>(node_count()));
    if (static_cast<double>(at_dest + cluster) >
        options_.load_factor * mean) {
      policy_suppressed_load_.fetch_add(1, std::memory_order_relaxed);
      policy_obs_->suppressed_load->inc();
      return host;
    }
  }
  auto [move_it, first] = last_policy_move_.try_emplace(object, host, dest);
  if (!first) {
    if (move_it->second.first == dest && move_it->second.second == host) {
      policy_reversals_.fetch_add(1, std::memory_order_relaxed);
      policy_obs_->pingpong_reversals->inc();
    }
    move_it->second = {host, dest};
  }
  policy_migrations_.fetch_add(1, std::memory_order_relaxed);
  policy_obs_->migrations_triggered->inc();
  return dest;
}

void LiveSystem::end(MoveToken& token) {
  if (token.id == 0) return;
  {
    std::lock_guard lock{mutex_};
    for (const std::string& name : token.locked) {
      auto it = directory_.find(name);
      // locked_by may no longer be ours: the lease may have expired and
      // another block taken over — only release what we still hold.
      if (it != directory_.end() && it->second.locked_by == token.id) {
        it->second.locked_by = 0;
        trace_locked(trace::EventKind::Unlock, name, kExternalSender,
                     token.id);
      }
    }
    token.locked.clear();
    trace_locked(trace::EventKind::BlockEnd, "", kExternalSender, token.id);
  }
  if (token.visit && token.granted) {
    // visit(): the objects migrate back to where they came from.
    for (const auto& [name, origin] : token.origins) {
      std::vector<std::string> one{name};
      {
        std::unique_lock lock{mutex_};
        auto it = directory_.find(name);
        if (it == directory_.end()) continue;
        transit_cv_.wait(lock,
                         [&] { return !directory_.at(name).in_transit; });
        if (it->second.fixed || it->second.node == origin) continue;
        it->second.in_transit = true;
        trace_locked(trace::EventKind::MigrationStart, name, origin,
                     token.id);
      }
      relocate(one, origin);
    }
    token.origins.clear();
  }
}

bool LiveSystem::lease_expired(const Meta& meta) const {
  return options_.lock_lease.count() > 0 && meta.locked_by != 0 &&
         std::chrono::steady_clock::now() >= meta.lease_expiry;
}

void LiveSystem::expire_lease(std::uint64_t token) {
  // The whole block's lease expires at once: every lock it holds is
  // released and the objects stay where they are ("released in place").
  for (auto& [name, meta] : directory_) {
    if (meta.locked_by == token) {
      meta.locked_by = 0;
      trace_locked(trace::EventKind::Unlock, name, kExternalSender, token);
    }
  }
  lease_expiries_.fetch_add(1, std::memory_order_relaxed);
  obs::runtime_metrics().lease_expiries->inc();
}

void LiveSystem::trace_locked(trace::EventKind kind,
                              const std::string& object, std::size_t node,
                              std::uint64_t block) {
  if (options_.trace == nullptr) return;
  trace::Event event;
  // Logical time: transport backends interleave wall-clock time
  // differently, but the directory orders protocol events identically.
  event.time = static_cast<double>(trace_clock_++);
  event.kind = kind;
  if (!object.empty()) {
    event.object = objsys::ObjectId{
        static_cast<std::uint32_t>(object_trace_id_locked(object))};
  }
  if (node < node_count()) {
    event.node = objsys::NodeId{static_cast<std::uint32_t>(node)};
  }
  if (block != 0) {
    event.block = objsys::BlockId{static_cast<std::uint32_t>(block)};
  }
  options_.trace->record(event);
}

std::uint64_t LiveSystem::object_trace_id_locked(const std::string& name) {
  const auto [it, inserted] = object_ids_.try_emplace(name, next_object_id_);
  if (inserted) ++next_object_id_;
  return it->second;
}

void LiveSystem::crash_node(std::size_t node) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(node < node_count(), "node index out of range");
  {
    std::lock_guard lock{mutex_};
    node_down_[node] = 1;
  }
  if (!remote()) {
    nodes_[node]->crash();
    // Under TCP the node's listener dies with it: peers observe connection
    // resets, and their pending replies break immediately.
    if (node < servers_.size()) servers_[node]->stop();
  }
  // The node's lookup cache dies with it (its directory slice and hints
  // are node-thread state and died inside crash() already).
  if (sharded() && node < caches_.size()) caches_[node]->clear();
  transport_->on_node_crash(node);
  crashes_.fetch_add(1, std::memory_order_relaxed);
  obs::runtime_metrics().crashes->inc();
}

void LiveSystem::restart_node(std::size_t node) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(node < node_count(), "node index out of range");
  if (!remote()) {
    nodes_[node]->restart();
    if (node < servers_.size()) {
      // A restarted process would come up on a fresh port; the in-process
      // stand-in does the same, and the transport is re-pointed at it.
      const std::uint16_t port = servers_[node]->start();
      OMIG_REQUIRE(port != 0, "could not rebind the node's listener");
      if (tcp_ != nullptr) {
        tcp_->set_peer(node, transport::Peer{"127.0.0.1", port});
      }
    }
  }
  transport_->on_node_restart(node);
  // Reconcile the directory with the freshly-empty node: reinstall every
  // object placed there from its checkpoint. In-transit objects are
  // skipped — their migration is in progress and settles them itself.
  struct Restore {
    std::string name;
    ObjectState state;
    bool durable;
  };
  std::vector<Restore> to_restore;
  {
    std::lock_guard lock{mutex_};
    node_down_[node] = 0;
    for (const auto& [name, meta] : directory_) {
      if (meta.node == node && !meta.in_transit) {
        to_restore.push_back({name, meta.checkpoint, meta.durable});
      }
    }
  }
  for (const auto& [name, state, durable] : to_restore) {
    if (install_with_retry(node, name, state, kExternalSender)) {
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      obs::runtime_metrics().recoveries->inc();
      if (durable) {
        // The checkpoint that revived this object was disk-backed — the
        // distinction durable_recoveries() reports.
        durable_recoveries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // The fresh node serves an empty directory slice; rebuild it (plus the
  // self-entries for objects reinstalled here) from the central map.
  if (sharded()) dir_reseed_node(node);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  obs::runtime_metrics().restarts->inc();
}

std::size_t LiveSystem::shard_of(const std::string& name) const {
  // FNV-1a: deterministic across processes, so a remote coordinator and a
  // test model agree on every name's shard.
  std::uint64_t hash = 14695981039346656037ull;
  for (const unsigned char c : name) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return static_cast<std::size_t>(hash % dir_shards_);
}

bool LiveSystem::dir_update(std::size_t target, const std::string& name,
                            std::size_t node, bool invalidate) {
  dir_updates_.fetch_add(1, std::memory_order_relaxed);
  obs::dir_metrics().updates->inc();
  transport::WireDirUpdate msg;
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  msg.name = name;
  msg.node = static_cast<std::uint64_t>(node);
  msg.invalidate = invalidate;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      backoff(attempt);
    }
    std::future<DirAck> done;
    if (!sent_ok(transport_->send_dir_update(kExternalSender, target, msg,
                                             done))) {
      continue;  // target is down; restart reconciliation re-seeds it
    }
    auto ack = await_reply(done);
    if (ack.has_value()) return ack->ok;
  }
  return false;
}

std::optional<DirReply> LiveSystem::dir_lookup(std::size_t from,
                                               std::size_t target,
                                               const std::string& name) {
  transport::WireDirLookup msg;
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  msg.name = name;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      backoff(attempt);
    }
    std::future<DirReply> reply;
    if (!sent_ok(transport_->send_dir_lookup(from, target, msg, reply))) {
      continue;
    }
    auto got = await_reply(reply);
    if (got.has_value()) return got;
  }
  return std::nullopt;
}

std::size_t LiveSystem::resolve_sharded(std::optional<std::size_t> from,
                                        const std::string& object,
                                        std::optional<std::size_t> stale) {
  const auto wall_start = std::chrono::steady_clock::now();
  obs::DirMetrics& metrics = obs::dir_metrics();
  dir_lookups_.fetch_add(1, std::memory_order_relaxed);
  objsys::NamedLocationCache& cache = *caches_[cache_slot(from)];
  const std::size_t origin = from.value_or(kExternalSender);
  auto finish = [&](std::size_t node) {
    cache.put(object, static_cast<std::uint64_t>(node), now_ms());
    metrics.lookup_us->record(us_since(wall_start));
    return node;
  };

  if (stale.has_value()) {
    // The previous attempt found no object at *stale: drop the lie from
    // the cache, then chase the forwarding hints migrations left behind.
    // Hints record each node's last departure destination, so departure
    // times rise strictly along the chain — it cannot cycle — and the hop
    // cap (= shard count) bounds the walk before the owner takes over.
    dir_stale_hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.lookups_stale->inc();
    cache.invalidate(object);
    if (options_.dir_strategy == objsys::ConsistencyStrategy::LazyForward) {
      std::size_t at = *stale;
      for (std::size_t hop = 0; hop < dir_shards_; ++hop) {
        if (!node_up(at)) break;
        auto hint = dir_lookup(origin, at, object);
        if (!hint.has_value()) break;  // unreachable mid-chase: ask owner
        const auto next = hint->found
                              ? static_cast<std::size_t>(hint->node)
                              : at;
        if (next >= node_count()) break;  // corrupt hint: distrust it
        if (next == at) {
          // A self-entry (or no hint at all): the chain terminates here.
          // The starting node just failed an invoke, though — never trust
          // it to name itself; fall through to the owner instead.
          if (at != *stale) return finish(at);
          break;
        }
        dir_hops_.fetch_add(1, std::memory_order_relaxed);
        metrics.forward_hops->inc();
        at = next;
      }
    }
  } else if (auto cached = cache.get(object); cached.has_value()) {
    bool fresh = true;
    if (options_.dir_strategy == objsys::ConsistencyStrategy::LeaseTtl) {
      const auto ttl =
          static_cast<std::uint64_t>(options_.dir_lease_ttl.count());
      fresh = now_ms() - cached->stamp <= ttl;
    }
    const auto node = static_cast<std::size_t>(cached->node);
    if (fresh && node < node_count() && node_up(node)) {
      dir_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      metrics.lookups_hit->inc();
      metrics.lookup_us->record(us_since(wall_start));
      return node;
    }
    cache.invalidate(object);
  }

  // Cache miss (or a failed chase): consult the shard owner's slice.
  const std::size_t owner = shard_owner(shard_of(object));
  if (!stale.has_value()) metrics.lookups_miss->inc();
  if (node_up(owner)) {
    auto reply = dir_lookup(origin, owner, object);
    if (reply.has_value() && reply->found) {
      const auto node = static_cast<std::size_t>(reply->node);
      if (node < node_count() && node_up(node)) return finish(node);
    }
  }
  // Owner down or its slice not yet re-seeded: the coordinator's map is
  // the model's durable layer, and the last resort.
  dir_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  metrics.fallbacks->inc();
  std::size_t node = owner;
  {
    std::lock_guard lock{mutex_};
    auto it = directory_.find(object);
    if (it != directory_.end()) node = it->second.node;
  }
  return finish(node);
}

void LiveSystem::dir_publish_move(const std::string& name, std::size_t src,
                                  std::size_t dest) {
  const std::size_t owner = shard_owner(shard_of(name));
  // Authoritative slice first, then the forwarding hint at the old host
  // and a self-entry at the new one so chases terminate there.
  (void)dir_update(owner, name, dest, false);
  if (src != dest && src != owner) (void)dir_update(src, name, dest, false);
  if (dest != owner) (void)dir_update(dest, name, dest, false);
  if (options_.dir_strategy == objsys::ConsistencyStrategy::EagerInvalidate) {
    for (auto& cache : caches_) {
      if (cache->invalidate(name)) {
        dir_invalidations_.fetch_add(1, std::memory_order_relaxed);
        obs::dir_metrics().invalidations->inc();
      }
    }
  }
}

void LiveSystem::dir_reseed_node(std::size_t node) {
  std::vector<std::pair<std::string, std::size_t>> slice;
  {
    std::lock_guard lock{mutex_};
    for (const auto& [name, meta] : directory_) {
      if (shard_owner(shard_of(name)) == node) {
        slice.emplace_back(name, meta.node);
      } else if (meta.node == node && !meta.in_transit) {
        slice.emplace_back(name, node);  // self-entry for a reinstall
      }
    }
  }
  for (const auto& [name, host] : slice) {
    (void)dir_update(node, name, host, false);
  }
}

bool LiveSystem::node_up(std::size_t node) const {
  OMIG_REQUIRE(node < node_count(), "node index out of range");
  std::lock_guard lock{mutex_};
  return node_down_[node] == 0;
}

void LiveSystem::set_remote_peer(std::size_t node, transport::Peer peer) {
  OMIG_REQUIRE(remote(), "set_remote_peer is for remote clusters");
  OMIG_REQUIRE(node < node_count(), "node index out of range");
  if (tcp_ != nullptr) tcp_->set_peer(node, std::move(peer));
}

void LiveSystem::shutdown_remote_nodes() {
  if (!remote() || transport_ == nullptr) return;
  for (std::size_t node = 0; node < node_count(); ++node) {
    (void)transport_->send_shutdown(node);
  }
}

std::uint64_t LiveSystem::invocations() const { return invocations_.load(); }
std::uint64_t LiveSystem::remote_invocations() const { return remote_.load(); }
std::uint64_t LiveSystem::migrations() const { return migrations_.load(); }
std::uint64_t LiveSystem::refused_moves() const { return refused_.load(); }
std::uint64_t LiveSystem::policy_migrations() const {
  return policy_migrations_.load();
}
std::uint64_t LiveSystem::policy_suppressed_hysteresis() const {
  return policy_suppressed_hysteresis_.load();
}
std::uint64_t LiveSystem::policy_suppressed_load() const {
  return policy_suppressed_load_.load();
}
std::uint64_t LiveSystem::policy_reversals() const {
  return policy_reversals_.load();
}
std::uint64_t LiveSystem::ema_updates() const { return ema_updates_.load(); }
std::uint64_t LiveSystem::retries() const { return retries_.load(); }
std::uint64_t LiveSystem::lease_expiries() const {
  return lease_expiries_.load();
}
std::uint64_t LiveSystem::crashes() const { return crashes_.load(); }
std::uint64_t LiveSystem::restarts() const { return restarts_.load(); }
std::uint64_t LiveSystem::recoveries() const { return recoveries_.load(); }
std::uint64_t LiveSystem::durable_recoveries() const {
  return durable_recoveries_.load();
}
std::uint64_t LiveSystem::replayed_objects() const {
  return replayed_objects_.load();
}

std::uint64_t LiveSystem::dropped_messages() const {
  return injector_ ? injector_->counters().dropped.load() : 0;
}

std::uint64_t LiveSystem::duplicated_messages() const {
  return injector_ ? injector_->counters().duplicated.load() : 0;
}

std::uint64_t LiveSystem::deduplicated_messages() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->deduplicated();
  return total;
}

std::uint64_t LiveSystem::send_rejections() const {
  return send_rejections_.load();
}

std::uint64_t LiveSystem::dir_lookups() const { return dir_lookups_.load(); }
std::uint64_t LiveSystem::dir_cache_hits() const {
  return dir_cache_hits_.load();
}
std::uint64_t LiveSystem::dir_stale_hits() const {
  return dir_stale_hits_.load();
}
std::uint64_t LiveSystem::dir_forward_hops() const { return dir_hops_.load(); }
std::uint64_t LiveSystem::dir_updates() const { return dir_updates_.load(); }
std::uint64_t LiveSystem::dir_invalidations() const {
  return dir_invalidations_.load();
}
std::uint64_t LiveSystem::dir_fallbacks() const {
  return dir_fallbacks_.load();
}

std::uint64_t LiveSystem::transport_reconnects() const {
  return tcp_ != nullptr ? tcp_->reconnects() : 0;
}

}  // namespace omig::runtime
