#include "runtime/live_system.hpp"

#include <algorithm>
#include <deque>
#include <thread>
#include <unordered_set>

#include "runtime/serde.hpp"
#include "util/assert.hpp"

namespace omig::runtime {

LiveSystem::LiveSystem(Options options) : options_{options} {
  OMIG_REQUIRE(options.nodes >= 1, "need at least one node");
}

LiveSystem::~LiveSystem() { stop(); }

void LiveSystem::register_type(const std::string& type,
                               ObjectFactory factory) {
  OMIG_REQUIRE(!started_, "register types before start()");
  factories_[type] = std::move(factory);
}

void LiveSystem::start() {
  OMIG_REQUIRE(!started_, "system already started");
  nodes_.reserve(options_.nodes);
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    nodes_.push_back(std::make_unique<LiveNode>(i, &factories_));
    nodes_.back()->start();
  }
  started_ = true;
}

void LiveSystem::stop() {
  for (auto& node : nodes_) node->stop();
}

bool LiveSystem::create(const std::string& name, ObjectState state,
                        std::size_t node) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(node < nodes_.size(), "node index out of range");
  if (!factories_.contains(state.type)) return false;
  {
    std::lock_guard lock{mutex_};
    if (directory_.contains(name)) return false;
    directory_[name] = Meta{node, false, false, 0};
  }
  MsgInstall msg;
  msg.name = name;
  msg.state = std::move(state);
  auto done = msg.done.get_future();
  nodes_[node]->mailbox().push(Message{std::move(msg)});
  const bool ok = done.get();
  if (!ok) {
    std::lock_guard lock{mutex_};
    directory_.erase(name);
  }
  return ok;
}

std::optional<std::size_t> LiveSystem::location(
    const std::string& name) const {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  if (it == directory_.end()) return std::nullopt;
  return it->second.node;
}

InvokeResult LiveSystem::invoke(const std::string& object,
                                const std::string& method,
                                const std::string& argument) {
  return invoke_impl(std::nullopt, object, method, argument);
}

InvokeResult LiveSystem::invoke_from(std::size_t from,
                                     const std::string& object,
                                     const std::string& method,
                                     const std::string& argument) {
  return invoke_impl(from, object, method, argument);
}

InvokeResult LiveSystem::invoke_impl(std::optional<std::size_t> from,
                                     const std::string& object,
                                     const std::string& method,
                                     const std::string& argument) {
  OMIG_REQUIRE(started_, "start() the system first");
  for (;;) {
    std::size_t node;
    {
      std::unique_lock lock{mutex_};
      auto it = directory_.find(object);
      if (it == directory_.end()) {
        return InvokeResult{false, "unknown object: " + object};
      }
      // "The call is blocked until the object is operational once again."
      transit_cv_.wait(lock, [&] {
        auto cur = directory_.find(object);
        return cur == directory_.end() || !cur->second.in_transit;
      });
      it = directory_.find(object);
      if (it == directory_.end()) {
        return InvokeResult{false, "unknown object: " + object};
      }
      node = it->second.node;
    }
    invocations_.fetch_add(1, std::memory_order_relaxed);
    const bool remote = !from.has_value() || *from != node;
    if (remote) {
      remote_.fetch_add(1, std::memory_order_relaxed);
      if (options_.remote_latency.count() > 0) {
        std::this_thread::sleep_for(options_.remote_latency);
      }
    }
    MsgInvoke msg;
    msg.object = object;
    msg.method = method;
    msg.argument = argument;
    auto reply = msg.reply.get_future();
    nodes_[node]->mailbox().push(Message{std::move(msg)});
    InvokeResult result = reply.get();
    if (remote && options_.remote_latency.count() > 0) {
      std::this_thread::sleep_for(options_.remote_latency);  // result message
    }
    // A migration can race the delivery: the directory said `node`, but the
    // object was evicted before our message arrived. Retry — this mirrors
    // real systems forwarding calls to the new location.
    if (!result.ok && result.value.starts_with("object not resident")) {
      continue;
    }
    return result;
  }
}

void LiveSystem::fix(const std::string& name) {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  OMIG_REQUIRE(it != directory_.end(), "fix: unknown object");
  it->second.fixed = true;
}

void LiveSystem::unfix(const std::string& name) {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  OMIG_REQUIRE(it != directory_.end(), "unfix: unknown object");
  it->second.fixed = false;
}

bool LiveSystem::is_fixed(const std::string& name) const {
  std::lock_guard lock{mutex_};
  auto it = directory_.find(name);
  OMIG_REQUIRE(it != directory_.end(), "is_fixed: unknown object");
  return it->second.fixed;
}

bool LiveSystem::attach(const std::string& a, const std::string& b,
                        const std::string& alliance) {
  if (a == b) return false;
  std::lock_guard lock{mutex_};
  if (!directory_.contains(a) || !directory_.contains(b)) return false;
  auto& ea = attachments_[a];
  if (std::any_of(ea.begin(), ea.end(), [&](const AttachEdge& e) {
        return e.peer == b && e.alliance == alliance;
      })) {
    return false;
  }
  ea.push_back(AttachEdge{b, alliance});
  attachments_[b].push_back(AttachEdge{a, alliance});
  return true;
}

bool LiveSystem::detach(const std::string& a, const std::string& b) {
  std::lock_guard lock{mutex_};
  auto erase = [&](const std::string& from, const std::string& peer) {
    auto it = attachments_.find(from);
    if (it == attachments_.end()) return false;
    const auto before = it->second.size();
    std::erase_if(it->second,
                  [&](const AttachEdge& e) { return e.peer == peer; });
    return it->second.size() != before;
  };
  const bool removed = erase(a, b);
  erase(b, a);
  return removed;
}

std::vector<std::string> LiveSystem::closure_locked(
    const std::string& object, const std::string& alliance) const {
  const bool restrict = options_.a_transitive_attachments && !alliance.empty();
  std::vector<std::string> out;
  std::unordered_set<std::string> seen{object};
  std::deque<std::string> frontier{object};
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    auto it = attachments_.find(cur);
    if (it == attachments_.end()) continue;
    for (const AttachEdge& e : it->second) {
      if (restrict && e.alliance != alliance) continue;
      if (seen.insert(e.peer).second) frontier.push_back(e.peer);
    }
  }
  return out;
}

std::size_t LiveSystem::relocate(const std::vector<std::string>& objects,
                                 std::size_t dest) {
  std::size_t moved = 0;
  for (const std::string& name : objects) {
    std::size_t src;
    {
      std::lock_guard lock{mutex_};
      src = directory_.at(name).node;
    }
    if (src == dest) {
      std::lock_guard lock{mutex_};
      directory_.at(name).in_transit = false;
      continue;
    }
    MsgEvict evict;
    evict.name = name;
    auto state_future = evict.state.get_future();
    nodes_[src]->mailbox().push(Message{std::move(evict)});
    ObjectState state = state_future.get();
    OMIG_ASSERT(!state.type.empty());

    // Linearise for the wire (Section 3.1) — the destination rebuilds the
    // object from bytes, never from shared memory.
    const std::vector<std::uint8_t> wire = encode(state);
    if (options_.remote_latency.count() > 0) {
      std::this_thread::sleep_for(options_.remote_latency);  // transfer
    }
    auto decoded = decode(wire);
    OMIG_ASSERT(decoded.has_value());

    MsgInstall install;
    install.name = name;
    install.state = std::move(*decoded);
    auto done = install.done.get_future();
    nodes_[dest]->mailbox().push(Message{std::move(install)});
    const bool ok = done.get();
    OMIG_ASSERT(ok);

    {
      std::lock_guard lock{mutex_};
      Meta& meta = directory_.at(name);
      meta.node = dest;
      meta.in_transit = false;
    }
    migrations_.fetch_add(1, std::memory_order_relaxed);
    ++moved;
  }
  transit_cv_.notify_all();
  return moved;
}

bool LiveSystem::migrate(const std::string& object, std::size_t dest,
                         const std::string& alliance) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(dest < nodes_.size(), "node index out of range");
  std::vector<std::string> to_move;
  {
    std::unique_lock lock{mutex_};
    if (!directory_.contains(object)) return false;
    for (const std::string& name : closure_locked(object, alliance)) {
      Meta& meta = directory_.at(name);
      // Wait out concurrent transits of this member, then claim it.
      transit_cv_.wait(lock,
                       [&] { return !directory_.at(name).in_transit; });
      if (meta.fixed) continue;
      meta.in_transit = true;
      to_move.push_back(name);
    }
  }
  relocate(to_move, dest);
  return true;
}

LiveSystem::MoveToken LiveSystem::visit(const std::string& object,
                                        std::size_t dest,
                                        const std::string& alliance) {
  MoveToken token = move(object, dest, alliance);
  token.visit = true;
  return token;
}

LiveSystem::MoveToken LiveSystem::move(const std::string& object,
                                       std::size_t dest,
                                       const std::string& alliance) {
  OMIG_REQUIRE(started_, "start() the system first");
  OMIG_REQUIRE(dest < nodes_.size(), "node index out of range");
  MoveToken token;
  std::vector<std::string> to_move;
  {
    std::unique_lock lock{mutex_};
    auto it = directory_.find(object);
    if (it == directory_.end()) return token;  // not granted
    token.id = next_token_++;

    if (options_.placement_policy) {
      // Transient placement: a conflicting unfinished move refuses us.
      if (it->second.locked_by != 0 || it->second.fixed) {
        refused_.fetch_add(1, std::memory_order_relaxed);
        return token;  // granted = false: caller invokes remotely
      }
      for (const std::string& name : closure_locked(object, alliance)) {
        Meta& meta = directory_.at(name);
        if (meta.locked_by != 0) continue;  // partial move
        meta.locked_by = token.id;
        token.locked.push_back(name);
        transit_cv_.wait(lock,
                         [&] { return !directory_.at(name).in_transit; });
        if (meta.fixed) continue;
        meta.in_transit = true;
        to_move.push_back(name);
      }
    } else {
      // Conventional: always migrate, no locks.
      for (const std::string& name : closure_locked(object, alliance)) {
        Meta& meta = directory_.at(name);
        transit_cv_.wait(lock,
                         [&] { return !directory_.at(name).in_transit; });
        if (meta.fixed) continue;
        meta.in_transit = true;
        to_move.push_back(name);
      }
    }
    token.granted = true;
    for (const std::string& name : to_move) {
      token.origins.emplace_back(name, directory_.at(name).node);
    }
  }
  relocate(to_move, dest);
  return token;
}

void LiveSystem::end(MoveToken& token) {
  if (token.id == 0) return;
  {
    std::lock_guard lock{mutex_};
    for (const std::string& name : token.locked) {
      auto it = directory_.find(name);
      if (it != directory_.end() && it->second.locked_by == token.id) {
        it->second.locked_by = 0;
      }
    }
    token.locked.clear();
  }
  if (token.visit && token.granted) {
    // visit(): the objects migrate back to where they came from.
    for (const auto& [name, origin] : token.origins) {
      std::vector<std::string> one{name};
      {
        std::unique_lock lock{mutex_};
        auto it = directory_.find(name);
        if (it == directory_.end()) continue;
        transit_cv_.wait(lock,
                         [&] { return !directory_.at(name).in_transit; });
        if (it->second.fixed || it->second.node == origin) continue;
        it->second.in_transit = true;
      }
      relocate(one, origin);
    }
    token.origins.clear();
  }
}

std::uint64_t LiveSystem::invocations() const { return invocations_.load(); }
std::uint64_t LiveSystem::remote_invocations() const { return remote_.load(); }
std::uint64_t LiveSystem::migrations() const { return migrations_.load(); }
std::uint64_t LiveSystem::refused_moves() const { return refused_.load(); }

}  // namespace omig::runtime
