#include "runtime/demo_types.hpp"

#include <algorithm>
#include <memory>

#include "runtime/live_system.hpp"

namespace omig::runtime {

ObjectFactory counter_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("add", [](ObjectState& self,
                                   const std::string& arg) {
      self.fields["count"] = std::to_string(std::stoll(self.fields["count"]) +
                                            std::stoll(arg));
      return self.fields["count"];
    });
    obj->register_method("get", [](ObjectState& self, const std::string&) {
      return self.fields["count"];
    });
    return obj;
  };
}

ObjectFactory case_file_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("append", [](ObjectState& self,
                                      const std::string& entry) {
      auto& log = self.fields["log"];
      log += log.empty() ? entry : ";" + entry;
      return log;
    });
    obj->register_method("entries", [](ObjectState& self, const std::string&) {
      const auto& log = self.fields["log"];
      return std::to_string(
          log.empty() ? 0 : 1 + std::count(log.begin(), log.end(), ';'));
    });
    return obj;
  };
}

ObjectFactory ledger_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("bill", [](ObjectState& self, const std::string&) {
      self.fields["total"] =
          std::to_string(std::stoi(self.fields["total"]) + 10);
      return self.fields["total"];
    });
    obj->register_method("total", [](ObjectState& self, const std::string&) {
      return self.fields["total"];
    });
    return obj;
  };
}

std::unordered_map<std::string, ObjectFactory> demo_factories() {
  std::unordered_map<std::string, ObjectFactory> factories;
  factories["counter"] = counter_factory();
  factories["case-file"] = case_file_factory();
  factories["ledger"] = ledger_factory();
  return factories;
}

void register_demo_types(LiveSystem& system) {
  for (auto& [type, factory] : demo_factories()) {
    system.register_type(type, std::move(factory));
  }
}

ObjectState make_state(
    std::string type,
    std::initializer_list<std::pair<const char*, const char*>> fields) {
  ObjectState state;
  state.type = std::move(type);
  for (const auto& [key, value] : fields) state.fields[key] = value;
  return state;
}

}  // namespace omig::runtime
