// Live objects: behaviour over a linearisable property bag.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "runtime/message.hpp"

namespace omig::runtime {

/// An object hosted on a live node. Behaviour is a method table operating
/// on the object's own ObjectState; because all behaviour is reconstructed
/// from the type tag by a registered factory, the object can be linearised,
/// shipped to another node and rebuilt there (migration).
class LiveObject {
public:
  using Method =
      std::function<std::string(ObjectState& self, const std::string& arg)>;

  LiveObject(std::string name, ObjectState state);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& type() const { return state_.type; }
  [[nodiscard]] ObjectState& state() { return state_; }
  [[nodiscard]] const ObjectState& state() const { return state_; }

  /// Registers `method` under `name`; replaces an existing registration.
  void register_method(const std::string& name, Method method);

  /// Invokes a method; returns ok=false with an error text if unknown.
  InvokeResult call(const std::string& method, const std::string& argument);

  /// Linearises the object for transfer (state copy).
  [[nodiscard]] ObjectState linearize() const { return state_; }

private:
  std::string name_;
  ObjectState state_;
  std::unordered_map<std::string, Method> methods_;
};

/// Rebuilds a live object (with its method table) from linearised state.
using ObjectFactory =
    std::function<std::unique_ptr<LiveObject>(std::string name, ObjectState)>;

}  // namespace omig::runtime
