// Demo object types shared by the live-runtime examples, the office
// workflow tests and the omig_node processes.
//
// A multi-process cluster only works if every node process can rebuild
// every migrated object from its linearised state — the factories must be
// compiled into the node binary, not registered ad hoc per test. This is
// the one registry they all use.
#pragma once

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <utility>

#include "runtime/live_object.hpp"

namespace omig::runtime {

class LiveSystem;

/// "counter": add(n) -> new total, get() -> total. Field: "count".
[[nodiscard]] ObjectFactory counter_factory();

/// "case-file": append(entry) -> log, entries() -> count. Field: "log"
/// (";"-separated entries).
[[nodiscard]] ObjectFactory case_file_factory();

/// "ledger": bill() -> total (+10 per call), total() -> total.
/// Field: "total".
[[nodiscard]] ObjectFactory ledger_factory();

/// Every demo factory keyed by type name — what an omig_node process
/// serves.
[[nodiscard]] std::unordered_map<std::string, ObjectFactory> demo_factories();

/// Registers every demo type on `system`; call before start().
void register_demo_types(LiveSystem& system);

/// State-literal builder for examples and tests.
[[nodiscard]] ObjectState make_state(
    std::string type,
    std::initializer_list<std::pair<const char*, const char*>> fields);

}  // namespace omig::runtime
