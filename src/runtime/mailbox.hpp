// Blocking multi-producer mailbox for live-runtime nodes.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace omig::runtime {

/// Unbounded MPSC queue: any thread pushes, the owning node thread pops.
/// `close()` wakes the consumer and makes further pops return nullopt once
/// the queue drains.
template <class T>
class Mailbox {
public:
  /// Enqueues a message. Returns false if the mailbox is closed.
  bool push(T value) {
    {
      std::lock_guard lock{mutex_};
      if (closed_) return false;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a message is available or the mailbox is closed and
  /// drained; nullopt signals shutdown.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Closes the mailbox; pending messages are still delivered.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return queue_.size();
  }

private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace omig::runtime
