// Blocking multi-producer mailbox for live-runtime nodes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace omig::runtime {

/// Typed verdict of a mailbox push. A rejection used to be observable only
/// through the broken promise inside the destroyed message; the explicit
/// status lets the retry/backoff layer count and log the rejection instead
/// of inferring it.
enum class PushStatus : std::uint8_t {
  Ok = 0,
  Closed,  ///< endpoint closed (node stopped or crashed); message dropped
};

/// Unbounded MPSC queue: any thread pushes, the owning node thread pops.
///
/// Shutdown semantics: `close()` transitions the mailbox to closed exactly
/// once — the first call wakes every blocked receiver, later calls are
/// no-ops. A closed mailbox rejects every `push()` (PushStatus::Closed;
/// the message is destroyed, which also breaks any promise it carries)
/// while pending messages are still delivered, so a graceful stop drains
/// the queue. `close_and_discard()` models a crash: pending messages are
/// destroyed undelivered. `reopen()` rearms a closed, consumer-less
/// mailbox for a node restart.
template <class T>
class Mailbox {
public:
  /// Enqueues a message. PushStatus::Closed means the mailbox rejected it
  /// (the message is dropped).
  PushStatus push(T value) {
    {
      std::lock_guard lock{mutex_};
      if (closed_) return PushStatus::Closed;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return PushStatus::Ok;
  }

  /// Blocks until a message is available or the mailbox is closed and
  /// drained; nullopt signals shutdown.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Closes the mailbox; pending messages are still delivered. Idempotent:
  /// only the first call notifies the receivers.
  void close() {
    {
      std::lock_guard lock{mutex_};
      if (closed_) return;
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Closes the mailbox and destroys all pending messages (their promises
  /// break, so blocked senders observe the failure). Returns how many
  /// messages were discarded.
  std::size_t close_and_discard() {
    std::deque<T> discarded;
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
      discarded.swap(queue_);
    }
    cv_.notify_all();
    return discarded.size();  // contents destroyed here, outside the lock
  }

  /// Rearms a closed mailbox (node restart). The caller must guarantee no
  /// consumer is blocked in pop() — i.e. the owning thread has exited.
  void reopen() {
    std::lock_guard lock{mutex_};
    closed_ = false;
    queue_.clear();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return queue_.size();
  }

private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace omig::runtime
