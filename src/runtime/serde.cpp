#include "runtime/serde.hpp"

#include <cstring>

namespace omig::runtime {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_{bytes} {}

  bool read_u32(std::uint32_t& out) {
    if (bytes_.size() - pos_ < 4) return false;
    out = static_cast<std::uint32_t>(bytes_[pos_]) |
          static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8 |
          static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16 |
          static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return true;
  }

  bool read_str(std::string& out) {
    std::uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode(const ObjectState& state) {
  std::vector<std::uint8_t> out;
  put_str(out, state.type);
  put_u32(out, static_cast<std::uint32_t>(state.fields.size()));
  for (const auto& [key, value] : state.fields) {
    put_str(out, key);
    put_str(out, value);
  }
  return out;
}

std::optional<ObjectState> decode(std::span<const std::uint8_t> bytes) {
  Reader reader{bytes};
  ObjectState state;
  if (!reader.read_str(state.type)) return std::nullopt;
  std::uint32_t count = 0;
  if (!reader.read_u32(count)) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key, value;
    if (!reader.read_str(key) || !reader.read_str(value)) {
      return std::nullopt;
    }
    state.fields[std::move(key)] = std::move(value);
  }
  if (!reader.exhausted()) return std::nullopt;  // trailing garbage
  return state;
}

}  // namespace omig::runtime
