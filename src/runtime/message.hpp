// Messages exchanged between live-runtime nodes.
//
// The live runtime (src/runtime/) is the beyond-paper counterpart of the
// simulator: the same primitives (invoke, migrate, move/end with placement,
// attachments) running on real threads with real mailboxes. Objects are
// linearised into an ObjectState for transfer, exactly as Section 3.1
// describes proxies linearising calls and objects.
#pragma once

#include <future>
#include <string>
#include <unordered_map>
#include <variant>

namespace omig::runtime {

/// Linearised object: its type tag plus a string property bag. The type tag
/// selects the factory that rebuilds behaviour at the destination node.
struct ObjectState {
  std::string type;
  std::unordered_map<std::string, std::string> fields;
};

/// Result of an invocation: either a payload or an error description.
struct InvokeResult {
  bool ok = false;
  std::string value;  ///< payload on success, error text on failure
};

/// Synchronous method invocation, replied to via the promise.
struct MsgInvoke {
  std::string object;
  std::string method;
  std::string argument;
  std::promise<InvokeResult> reply;
};

/// Installs a (migrated or new) object on the receiving node.
struct MsgInstall {
  std::string name;
  ObjectState state;
  std::promise<bool> done;
};

/// Evicts an object: the node linearises it, removes it, and replies with
/// the state (empty type on failure).
struct MsgEvict {
  std::string name;
  std::promise<ObjectState> state;
};

/// Stops the node's event loop.
struct MsgStop {};

using Message = std::variant<MsgInvoke, MsgInstall, MsgEvict, MsgStop>;

}  // namespace omig::runtime
