// Messages exchanged between live-runtime nodes.
//
// The live runtime (src/runtime/) is the beyond-paper counterpart of the
// simulator: the same primitives (invoke, migrate, move/end with placement,
// attachments) running on real threads with real mailboxes. Objects are
// linearised into an ObjectState for transfer, exactly as Section 3.1
// describes proxies linearising calls and objects.
#pragma once

#include <cstdint>
#include <future>
#include <string>
#include <unordered_map>
#include <variant>

namespace omig::runtime {

/// Linearised object: its type tag plus a string property bag. The type tag
/// selects the factory that rebuilds behaviour at the destination node.
struct ObjectState {
  std::string type;
  std::unordered_map<std::string, std::string> fields;

  friend bool operator==(const ObjectState&, const ObjectState&) = default;
};

/// Result of an invocation: either a payload or an error description.
struct InvokeResult {
  bool ok = false;
  std::string value;  ///< payload on success, error text on failure

  friend bool operator==(const InvokeResult&, const InvokeResult&) = default;
};

/// Synchronous method invocation, replied to via the promise.
///
/// `seq` identifies the logical request: a retransmission (after a lost
/// message or a crashed node) reuses the seq of the original, and the
/// receiving node deduplicates — the method body runs at most once, the
/// duplicate is answered from a bounded reply cache. seq 0 disables
/// deduplication (single-delivery fast path).
struct MsgInvoke {
  std::string object;
  std::string method;
  std::string argument;
  std::uint64_t seq = 0;
  std::promise<InvokeResult> reply;
};

/// Installs a (migrated or new) object on the receiving node. Idempotent
/// per seq: a duplicate install of the same (name, seq) is acknowledged
/// without rebuilding the object.
struct MsgInstall {
  std::string name;
  ObjectState state;
  std::uint64_t seq = 0;
  std::promise<bool> done;
};

/// Evicts an object: the node linearises it, removes it, and replies with
/// the state (empty type on failure). Idempotent per seq: a duplicate
/// evict replies with the state captured by the first delivery.
struct MsgEvict {
  std::string name;
  std::uint64_t seq = 0;
  std::promise<ObjectState> state;
};

/// Answer to a directory lookup: whether this node has an entry for the
/// object (shard-slice record or forwarding hint), and where it points.
struct DirReply {
  bool found = false;
  std::uint64_t node = 0;

  friend bool operator==(const DirReply&, const DirReply&) = default;
};

/// Acknowledgement of a directory update.
struct DirAck {
  bool ok = false;

  friend bool operator==(const DirAck&, const DirAck&) = default;
};

/// Asks this node for its directory entry for `name` — it answers from its
/// shard slice / forwarding hints (DirectoryKind::Sharded only,
/// docs/directory.md). Read-only and idempotent; seq is carried for
/// symmetry with the other requests but needs no dedup.
struct MsgDirLookup {
  std::string name;
  std::uint64_t seq = 0;
  std::promise<DirReply> reply;
};

/// Installs (or, with `invalidate`, drops) this node's directory entry for
/// `name`. Idempotent: the update carries the absolute new value.
struct MsgDirUpdate {
  std::string name;
  std::uint64_t node = 0;
  bool invalidate = false;
  std::uint64_t seq = 0;
  std::promise<DirAck> done;
};

/// Stops the node's event loop.
struct MsgStop {};

using Message = std::variant<MsgInvoke, MsgInstall, MsgEvict, MsgDirLookup,
                             MsgDirUpdate, MsgStop>;

}  // namespace omig::runtime
