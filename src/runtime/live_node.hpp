// A live node: one thread, one mailbox, a set of hosted objects.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "runtime/live_object.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"

namespace omig::runtime {

/// Executes messages for the objects it hosts. Owned by LiveSystem; the
/// factory registry (shared, immutable after startup) rebuilds migrated
/// objects.
class LiveNode {
public:
  LiveNode(std::size_t id,
           const std::unordered_map<std::string, ObjectFactory>* factories);
  ~LiveNode();

  LiveNode(const LiveNode&) = delete;
  LiveNode& operator=(const LiveNode&) = delete;

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] Mailbox<Message>& mailbox() { return mailbox_; }

  /// Starts the event-loop thread.
  void start();
  /// Sends MsgStop and joins the thread.
  void stop();

  [[nodiscard]] std::uint64_t processed() const { return processed_.load(); }
  [[nodiscard]] std::uint64_t hosted_objects() const {
    return hosted_.load();
  }

private:
  void run();
  void handle(MsgInvoke& msg);
  void handle(MsgInstall& msg);
  void handle(MsgEvict& msg);

  std::size_t id_;
  const std::unordered_map<std::string, ObjectFactory>* factories_;
  Mailbox<Message> mailbox_;
  std::thread thread_;
  std::unordered_map<std::string, std::unique_ptr<LiveObject>> objects_;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> hosted_{0};
};

}  // namespace omig::runtime
