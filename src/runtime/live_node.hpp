// A live node: one thread, one mailbox, a set of hosted objects.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "runtime/live_object.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "store/store.hpp"

namespace omig::runtime {

/// Executes messages for the objects it hosts. Owned by LiveSystem; the
/// factory registry (shared, immutable after startup) rebuilds migrated
/// objects.
///
/// Lifecycle: start() → [crash() → restart()]* → stop(). start() and
/// stop() are idempotent and safe to call from multiple threads. crash()
/// models a node failure: the event loop dies, queued messages are
/// destroyed undelivered (their promises break) and all hosted objects are
/// lost; restart() brings the node back empty — the system layer
/// reconciles the directory and reinstalls objects from checkpoints.
class LiveNode {
public:
  LiveNode(std::size_t id,
           const std::unordered_map<std::string, ObjectFactory>* factories);
  ~LiveNode();

  LiveNode(const LiveNode&) = delete;
  LiveNode& operator=(const LiveNode&) = delete;

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] Mailbox<Message>& mailbox() { return mailbox_; }

  /// Attaches a durable store (docs/durability.md): every install appends
  /// a fsynced checkpoint record before it is acknowledged, every evict an
  /// evict record — so an acked install survives SIGKILL. Non-owning; must
  /// outlive the node. Call before start().
  void set_store(store::DurableStore* store) { store_ = store; }

  /// Rebuilds hosted objects from the attached store's recovered view
  /// (entries recorded for this node with a decodable state). Call after
  /// set_store() and before start() — this is the relaunch path of
  /// omig_node --data-dir. Returns the number of objects restored.
  std::size_t preload_from_store();

  /// Starts the event-loop thread. No-op if already running.
  void start();
  /// Closes the mailbox (pending messages drain) and joins the thread.
  /// Idempotent; safe to call concurrently with the destructor.
  void stop();

  /// Abrupt failure: discards queued messages, joins the thread, drops all
  /// hosted objects and dedup state. No-op if the node is not running.
  void crash();
  /// Restarts a crashed (or stopped) node with an empty object table.
  void restart();

  [[nodiscard]] bool running() const;

  [[nodiscard]] std::uint64_t processed() const { return processed_.load(); }
  [[nodiscard]] std::uint64_t hosted_objects() const {
    return hosted_.load();
  }
  /// Messages answered from the dedup caches instead of being re-executed.
  [[nodiscard]] std::uint64_t deduplicated() const { return deduped_.load(); }
  /// Directory entries (shard-slice records + forwarding hints) this node
  /// currently serves (DirectoryKind::Sharded, docs/directory.md).
  [[nodiscard]] std::uint64_t directory_entries() const {
    return dir_entry_count_.load();
  }

private:
  void run();
  void handle(MsgInvoke& msg);
  void handle(MsgInstall& msg);
  void handle(MsgEvict& msg);
  void handle(MsgDirLookup& msg);
  void handle(MsgDirUpdate& msg);
  /// Inserts into a seq-keyed cache, evicting the oldest entry beyond the
  /// retention bound (enough to cover any plausible retransmission window).
  template <class V>
  void remember(std::unordered_map<std::uint64_t, V>& cache,
                std::deque<std::uint64_t>& order, std::uint64_t seq, V value);

  std::size_t id_;
  const std::unordered_map<std::string, ObjectFactory>* factories_;
  store::DurableStore* store_ = nullptr;  ///< optional; non-owning
  Mailbox<Message> mailbox_;

  mutable std::mutex lifecycle_mutex_;  ///< guards thread_ start/join
  std::thread thread_;

  // Node-thread-only state (no locking: touched by run() while the thread
  // lives, and by crash()/restart() only after joining it).
  std::unordered_map<std::string, std::unique_ptr<LiveObject>> objects_;
  std::unordered_map<std::string, std::uint64_t> installed_seq_;
  std::unordered_map<std::uint64_t, InvokeResult> invoke_replies_;
  std::deque<std::uint64_t> invoke_order_;
  std::unordered_map<std::uint64_t, ObjectState> evicted_states_;
  std::deque<std::uint64_t> evict_order_;
  /// Sharded-directory state this node serves: its shard slice plus any
  /// forwarding hints left when an object migrated away. Volatile — a
  /// crash loses it, and the coordinator re-seeds the slice on restart.
  std::unordered_map<std::string, std::uint64_t> dir_entries_;

  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> hosted_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> dir_entry_count_{0};
};

}  // namespace omig::runtime
