// Live distributed-object system: the paper's primitives on real threads.
//
// Each node is a thread with a mailbox; objects are property bags with a
// method table, linearised for transfer exactly as the proxies of Section
// 3.1 linearise calls. The system layer implements the directory, the
// fix/attach primitives, raw migration, and move/end blocks under either
// conventional or transient-placement semantics — so the paper's conflict
// scenarios can be reproduced outside the simulator.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/live_node.hpp"

namespace omig::runtime {

class LiveSystem {
public:
  struct Options {
    std::size_t nodes = 2;
    /// Artificial one-way latency added to remote operations, so examples
    /// show timing effects. Zero = as fast as the threads go.
    std::chrono::microseconds remote_latency{0};
    /// Restrict attachment transitiveness to the alliance a move names.
    bool a_transitive_attachments = false;
    /// Use transient placement for move(): a conflicting move is refused
    /// instead of stealing the object (Section 3.2).
    bool placement_policy = true;
  };

  /// Token returned by move()/visit(): carries the placement grant, the
  /// set of objects the block locked, and (for visit) where the moved
  /// objects came from.
  struct MoveToken {
    std::uint64_t id = 0;
    bool granted = false;
    bool visit = false;
    std::vector<std::string> locked;
    std::vector<std::pair<std::string, std::size_t>> origins;
  };

  explicit LiveSystem(Options options);
  ~LiveSystem();
  LiveSystem(const LiveSystem&) = delete;
  LiveSystem& operator=(const LiveSystem&) = delete;

  /// Registers the factory that rebuilds objects of `type` after migration.
  /// Must be called before `start()`.
  void register_type(const std::string& type, ObjectFactory factory);

  /// Starts all node threads.
  void start();
  /// Stops all node threads (also done by the destructor).
  void stop();

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Creates an object on `node`. Fails (returns false) on duplicate names
  /// or unknown type.
  bool create(const std::string& name, ObjectState state, std::size_t node);

  /// Current node of an object, or nullopt if unknown.
  [[nodiscard]] std::optional<std::size_t> location(
      const std::string& name) const;

  /// Synchronous invocation from outside any node.
  InvokeResult invoke(const std::string& object, const std::string& method,
                      const std::string& argument);

  /// Synchronous invocation on behalf of code running at `from` — counts
  /// remote statistics and pays the artificial remote latency.
  InvokeResult invoke_from(std::size_t from, const std::string& object,
                           const std::string& method,
                           const std::string& argument);

  // --- the paper's primitives ------------------------------------------------
  void fix(const std::string& name);
  void unfix(const std::string& name);
  [[nodiscard]] bool is_fixed(const std::string& name) const;

  /// attach(a, b) in alliance context `alliance` ("" = no context).
  bool attach(const std::string& a, const std::string& b,
              const std::string& alliance = "");
  bool detach(const std::string& a, const std::string& b);

  /// Raw migrate(): moves `object` and its attachment closure (restricted
  /// to `alliance` when a_transitive_attachments is on) to `dest`. Fixed
  /// objects stay. Returns false if the object is unknown.
  bool migrate(const std::string& object, std::size_t dest,
               const std::string& alliance = "");

  /// move(): under placement, grants and locks, or refuses if a conflicting
  /// move holds the object; under the conventional policy it always
  /// migrates (and the token is always granted, with no locks).
  MoveToken move(const std::string& object, std::size_t dest,
                 const std::string& alliance = "");

  /// visit(): like move(), but end() migrates the moved objects back to
  /// where they came from (paper Section 2.3, call-by-visit).
  MoveToken visit(const std::string& object, std::size_t dest,
                  const std::string& alliance = "");

  /// end(): releases the block's placement locks and, for visit tokens,
  /// migrates the moved objects home.
  void end(MoveToken& token);

  // --- statistics -------------------------------------------------------------
  [[nodiscard]] std::uint64_t invocations() const;
  [[nodiscard]] std::uint64_t remote_invocations() const;
  [[nodiscard]] std::uint64_t migrations() const;
  [[nodiscard]] std::uint64_t refused_moves() const;

private:
  struct Meta {
    std::size_t node = 0;
    bool fixed = false;
    bool in_transit = false;
    std::uint64_t locked_by = 0;  ///< move-token id, 0 = unlocked
  };

  struct AttachEdge {
    std::string peer;
    std::string alliance;
  };

  /// Attachment closure of `object` (requires `mutex_`).
  [[nodiscard]] std::vector<std::string> closure_locked(
      const std::string& object, const std::string& alliance) const;

  /// Physically relocates `objects` to `dest`; objects must already be
  /// marked in_transit. Returns the count actually moved.
  std::size_t relocate(const std::vector<std::string>& objects,
                       std::size_t dest);

  InvokeResult invoke_impl(std::optional<std::size_t> from,
                           const std::string& object,
                           const std::string& method,
                           const std::string& argument);

  Options options_;
  std::unordered_map<std::string, ObjectFactory> factories_;
  std::vector<std::unique_ptr<LiveNode>> nodes_;
  bool started_ = false;

  mutable std::mutex mutex_;
  std::condition_variable transit_cv_;
  std::unordered_map<std::string, Meta> directory_;
  std::unordered_map<std::string, std::vector<AttachEdge>> attachments_;
  std::uint64_t next_token_ = 1;

  std::atomic<std::uint64_t> invocations_{0};
  std::atomic<std::uint64_t> remote_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> refused_{0};
};

}  // namespace omig::runtime
