// Live distributed-object system: the paper's primitives on real threads.
//
// Each node is a thread with a mailbox; objects are property bags with a
// method table, linearised for transfer exactly as the proxies of Section
// 3.1 linearise calls. The system layer implements the directory, the
// fix/attach primitives, raw migration, and move/end blocks under either
// conventional or transient-placement semantics — so the paper's conflict
// scenarios can be reproduced outside the simulator.
//
// All inter-node traffic goes through a transport::Transport
// (docs/transport.md). The default InProc backend delivers straight into
// the node mailboxes; the Tcp backend marshals every request into a wire
// frame and sends it over a localhost socket — either to NodeServers
// bridging back into this process's own nodes, or (remote mode) to
// omig_node processes, which makes the system a cluster coordinator.
//
// Failure model (all off by default; see docs/fault_model.md): a
// FaultPlan perturbs message delivery (drop / delay / duplicate) and
// schedules node crashes. The protocol tolerates this with sequence-
// numbered at-most-once delivery, bounded retries with exponential
// backoff, placement-lock leases (a lock held by a dead move-block
// expires; the object is released in place and callers fall back to
// remote invocation — the paper's conflict fallback generalised to
// failures), and crash-consistent recovery: the directory checkpoints
// each object's linearised state at creation and every migration, and
// reinstalls from the checkpoint when a node restarts or a migration
// pulls an object off a dead node.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/families.hpp"
#include "objsys/locality.hpp"
#include "objsys/location_cache.hpp"
#include "objsys/sharded_directory.hpp"
#include "runtime/live_node.hpp"
#include "store/store.hpp"
#include "trace/event.hpp"
#include "transport/transport.hpp"

namespace omig::trace {
class TraceLog;
}

namespace omig::net {
class EventLoop;
}

namespace omig::transport {
class NodeServer;
class SocketTransport;
}

namespace omig::runtime {

/// Which backend carries inter-node traffic. When Options::remote_nodes
/// is set, InProc is meaningless and upgrades to Tcp; AsyncTcp is
/// honoured in remote mode too.
enum class TransportKind : std::uint8_t {
  InProc,    ///< promise-carrying messages straight into the mailboxes
  Tcp,       ///< wire frames over localhost sockets, blocking I/O +
             ///< one reader thread per peer (NodeServer per node)
  AsyncTcp,  ///< same wire frames, all I/O multiplexed on one
             ///< net::EventLoop shared by the client side and servers
};

/// Placement policy governing move()/visit() blocks (docs/policies.md).
/// Conventional and Placement are the paper's pair; the adaptive kinds
/// are the feedback-driven re-judgement of claim 3: they treat the
/// requested destination as advisory and decide from the per-object
/// access-locality EMA instead.
enum class MovePolicy : std::uint8_t {
  Conventional,  ///< always migrate to the requested node, no locks
  Placement,     ///< transient placement: conflicting moves are refused
  Adaptive,      ///< migrate toward the EMA-dominant caller, hysteresis-gated
  AdaptiveLoad,  ///< Adaptive plus a per-node hosted-objects load veto
};

[[nodiscard]] const char* to_string(MovePolicy policy);
/// Parses "conventional|placement|adaptive|adaptive-load"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] MovePolicy move_policy_from_string(const std::string& name);

class LiveSystem {
public:
  struct Options {
    std::size_t nodes = 2;
    /// Artificial one-way latency added to remote operations, so examples
    /// show timing effects. Zero = as fast as the threads go.
    std::chrono::microseconds remote_latency{0};
    /// Restrict attachment transitiveness to the alliance a move names.
    bool a_transitive_attachments = false;
    /// move()/visit() semantics. Placement (the default) refuses a
    /// conflicting move instead of stealing the object (Section 3.2); the
    /// adaptive kinds migrate toward the EMA-dominant caller instead of
    /// the requested destination (docs/policies.md).
    MovePolicy policy = MovePolicy::Placement;

    // --- adaptive-policy knobs (docs/policies.md) -------------------------
    /// Per-access EMA retention factor of the locality tracker.
    double ema_decay = 0.9;
    /// Migrate only when the dominant node's EMA share leads the host's
    /// share by at least this margin (design decision 9, ARCHITECTURE.md).
    double hysteresis_band = 0.2;
    /// Minimum effective EMA sample size before migrating at all.
    double adaptive_min_weight = 4.0;
    /// AdaptiveLoad: veto migrations into a node whose hosted-object count
    /// would exceed this multiple of the per-node mean.
    double load_factor = 2.0;

    // --- location directory (docs/directory.md) ---------------------------
    /// Central: every lookup reads the coordinator's directory map (the
    /// pre-sharding behaviour). Sharded: object names hash to shard slices
    /// served by the nodes themselves, fronted by per-origin lookup caches
    /// and forwarding hints — lookups become messages, so the protocol's
    /// consistency story is observable end to end.
    objsys::DirectoryKind directory = objsys::DirectoryKind::Central;
    /// Shard count for the sharded directory; 0 = one shard per node.
    std::size_t dir_shards = 0;
    /// How caches learn about migrations (docs/directory.md).
    objsys::ConsistencyStrategy dir_strategy =
        objsys::ConsistencyStrategy::LazyForward;
    /// Cache-entry lifetime under ConsistencyStrategy::LeaseTtl.
    std::chrono::milliseconds dir_lease_ttl{50};

    // --- transport --------------------------------------------------------
    /// Backend for inter-node traffic (docs/transport.md).
    TransportKind transport = TransportKind::InProc;
    /// Remote cluster mode: endpoints of already-running omig_node
    /// processes, indexed by node id. Non-empty means this system hosts no
    /// local node threads (`nodes` is ignored) and coordinates the cluster
    /// over TCP.
    std::vector<transport::Peer> remote_nodes;
    /// TCP backend: connect attempts per send and their base backoff
    /// (doubled per attempt, capped) — the reconnect budget after a reset.
    int tcp_connect_attempts = 4;
    std::chrono::milliseconds tcp_connect_backoff{1};
    /// Optional protocol-event trace, recorded at the directory layer on a
    /// logical clock so the same workload yields the same trace under
    /// every transport backend. Non-owning; must outlive the system.
    trace::TraceLog* trace = nullptr;

    // --- fault tolerance (defaults preserve pre-fault behaviour) ----------
    /// Message faults and crash schedule; empty = nothing is perturbed.
    /// Times in the plan are milliseconds after start().
    fault::FaultPlan fault_plan;
    /// Placement-lock lease: a lock older than this expires and the object
    /// is released in place. Zero = locks never expire (paper semantics).
    std::chrono::milliseconds lock_lease{0};
    /// Retransmission budget per message (a lost message or crashed node
    /// breaks the reply promise; each retry re-sends under the same
    /// sequence number, so delivery stays at-most-once).
    int max_retries = 8;
    /// Base backoff between retries; doubled per attempt (capped).
    std::chrono::milliseconds retry_backoff{1};
    /// Optional reply timeout per delivery attempt; zero = wait forever
    /// (losses are observed through broken promises, not timeouts).
    std::chrono::milliseconds reply_timeout{0};

    // --- durability (docs/durability.md) ----------------------------------
    /// Directory for the coordinator's durable store: a CRC32-framed WAL
    /// plus compacted snapshots recording every object checkpoint,
    /// migration, and lease grant. Empty = in-memory only (pre-durability
    /// behaviour). On start() the store is recovered and every surviving
    /// object is reinstalled on its recorded node; no acked migration is
    /// lost across a coordinator restart.
    std::string data_dir;
    /// Auto-compact the store after this many WAL appends (0 = only the
    /// final compaction at stop()).
    std::uint64_t store_compact_every = 256;
  };

  /// Token returned by move()/visit(): carries the placement grant, the
  /// set of objects the block locked, and (for visit) where the moved
  /// objects came from.
  struct MoveToken {
    std::uint64_t id = 0;
    bool granted = false;
    bool visit = false;
    std::vector<std::string> locked;
    std::vector<std::pair<std::string, std::size_t>> origins;
  };

  explicit LiveSystem(Options options);
  ~LiveSystem();
  LiveSystem(const LiveSystem&) = delete;
  LiveSystem& operator=(const LiveSystem&) = delete;

  /// Registers the factory that rebuilds objects of `type` after migration.
  /// Must be called before `start()`.
  void register_type(const std::string& type, ObjectFactory factory);

  /// Starts all node threads and the transport (and the fault schedule, if
  /// any). In remote mode no node threads start — the configured omig_node
  /// processes must already be listening.
  void start();
  /// Stops all node threads (also done by the destructor). Idempotent and
  /// safe to call from several threads concurrently. Remote node processes
  /// are left running — see shutdown_remote_nodes().
  void stop();

  [[nodiscard]] std::size_t node_count() const {
    return remote() ? options_.remote_nodes.size() : nodes_.size();
  }
  /// True when this system coordinates omig_node processes over TCP
  /// instead of hosting its own node threads.
  [[nodiscard]] bool remote() const { return !options_.remote_nodes.empty(); }

  /// Creates an object on `node`. Fails (returns false) on duplicate names
  /// or unknown type.
  bool create(const std::string& name, ObjectState state, std::size_t node);

  /// Current node of an object, or nullopt if unknown.
  [[nodiscard]] std::optional<std::size_t> location(
      const std::string& name) const;

  /// Synchronous invocation from outside any node.
  InvokeResult invoke(const std::string& object, const std::string& method,
                      const std::string& argument);

  /// Synchronous invocation on behalf of code running at `from` — counts
  /// remote statistics and pays the artificial remote latency.
  InvokeResult invoke_from(std::size_t from, const std::string& object,
                           const std::string& method,
                           const std::string& argument);

  // --- the paper's primitives ------------------------------------------------
  void fix(const std::string& name);
  void unfix(const std::string& name);
  [[nodiscard]] bool is_fixed(const std::string& name) const;

  /// attach(a, b) in alliance context `alliance` ("" = no context).
  bool attach(const std::string& a, const std::string& b,
              const std::string& alliance = "");
  bool detach(const std::string& a, const std::string& b);

  /// Raw migrate(): moves `object` and its attachment closure (restricted
  /// to `alliance` when a_transitive_attachments is on) to `dest`. Fixed
  /// objects stay. Returns false if the object is unknown.
  bool migrate(const std::string& object, std::size_t dest,
               const std::string& alliance = "");

  /// move(): under placement, grants and locks, or refuses if a conflicting
  /// move holds the object; under the conventional policy it always
  /// migrates (and the token is always granted, with no locks).
  MoveToken move(const std::string& object, std::size_t dest,
                 const std::string& alliance = "");

  /// visit(): like move(), but end() migrates the moved objects back to
  /// where they came from (paper Section 2.3, call-by-visit).
  MoveToken visit(const std::string& object, std::size_t dest,
                  const std::string& alliance = "");

  /// end(): releases the block's placement locks and, for visit tokens,
  /// migrates the moved objects home.
  void end(MoveToken& token);

  // --- failure injection -----------------------------------------------------
  /// Abruptly kills node `node`: queued messages are destroyed, hosted
  /// object state is lost; under TCP its listener goes down too, so peers
  /// observe connection resets. Locks held by move-blocks that originated
  /// there stay held until their lease expires. In remote mode this only
  /// records the death (kill the process yourself) and resets the
  /// connection. Also driven automatically by the fault plan's crashes.
  void crash_node(std::size_t node);
  /// Restarts a crashed node and reconciles the directory: every object
  /// the directory places there is reinstalled from its last checkpoint.
  /// In remote mode the node process must already be back up (relaunch it
  /// and call set_remote_peer first).
  void restart_node(std::size_t node);
  [[nodiscard]] bool node_up(std::size_t node) const;

  /// Remote mode: re-points `node` at a restarted omig_node process (the
  /// relaunched process owns a fresh port).
  void set_remote_peer(std::size_t node, transport::Peer peer);
  /// Remote mode: asks every remote node process to exit (fire-and-forget).
  void shutdown_remote_nodes();

  // --- statistics -------------------------------------------------------------
  [[nodiscard]] std::uint64_t invocations() const;
  [[nodiscard]] std::uint64_t remote_invocations() const;
  [[nodiscard]] std::uint64_t migrations() const;
  [[nodiscard]] std::uint64_t refused_moves() const;
  // Robustness counters (all zero in a fault-free run).
  [[nodiscard]] std::uint64_t retries() const;
  [[nodiscard]] std::uint64_t lease_expiries() const;
  [[nodiscard]] std::uint64_t crashes() const;
  [[nodiscard]] std::uint64_t restarts() const;
  /// Objects reinstalled from a checkpoint (restart reconciliation or a
  /// migration that pulled an object off a dead node).
  [[nodiscard]] std::uint64_t recoveries() const;
  /// Of recoveries(), those whose checkpoint was backed by the durable
  /// store (fsynced append or disk replay) rather than only coordinator
  /// memory. Zero without Options::data_dir.
  [[nodiscard]] std::uint64_t durable_recoveries() const;
  /// Objects rebuilt from the durable store's WAL/snapshot at start().
  [[nodiscard]] std::uint64_t replayed_objects() const;
  /// The coordinator's durable store, or nullptr without a data_dir.
  [[nodiscard]] const store::DurableStore* store() const {
    return store_.get();
  }
  // Adaptive-policy counters (all zero unless Options::policy is
  // Adaptive/AdaptiveLoad; docs/policies.md).
  /// Migrations the adaptive policy decided to perform.
  [[nodiscard]] std::uint64_t policy_migrations() const;
  /// Candidate moves suppressed by the hysteresis band / min weight.
  [[nodiscard]] std::uint64_t policy_suppressed_hysteresis() const;
  /// Candidate moves vetoed by AdaptiveLoad's hosted-objects cap.
  [[nodiscard]] std::uint64_t policy_suppressed_load() const;
  /// Adaptive migrations that exactly undid the object's previous one.
  [[nodiscard]] std::uint64_t policy_reversals() const;
  /// Locality-EMA updates recorded by invocations.
  [[nodiscard]] std::uint64_t ema_updates() const;

  [[nodiscard]] std::uint64_t dropped_messages() const;
  [[nodiscard]] std::uint64_t duplicated_messages() const;
  /// Messages answered from the nodes' dedup caches.
  [[nodiscard]] std::uint64_t deduplicated_messages() const;
  /// Sends the transport rejected with a typed status (closed mailbox,
  /// connection reset, unreachable peer) — each one fed a retry decision.
  [[nodiscard]] std::uint64_t send_rejections() const;
  /// TCP connections re-established after a reset (0 for in-proc).
  [[nodiscard]] std::uint64_t transport_reconnects() const;

  // Sharded-directory counters (all zero under DirectoryKind::Central).
  /// Location resolutions that went through the sharded protocol.
  [[nodiscard]] std::uint64_t dir_lookups() const;
  /// Resolutions answered by the origin's lookup cache.
  [[nodiscard]] std::uint64_t dir_cache_hits() const;
  /// Cached locations that turned out stale (invoke found no resident
  /// object there) and were invalidated.
  [[nodiscard]] std::uint64_t dir_stale_hits() const;
  /// Forwarding-hint hops chased after stale hits (LazyForward).
  [[nodiscard]] std::uint64_t dir_forward_hops() const;
  /// Slice/hint updates published to shard owners and old hosts.
  [[nodiscard]] std::uint64_t dir_updates() const;
  /// Cache entries eagerly invalidated by migrations (EagerInvalidate).
  [[nodiscard]] std::uint64_t dir_invalidations() const;
  /// Resolutions that fell back to the coordinator's central map because
  /// the shard owner was unreachable (crash window before re-seeding).
  [[nodiscard]] std::uint64_t dir_fallbacks() const;
  /// Node serving `name`'s directory shard (Sharded mode, after start()).
  [[nodiscard]] std::size_t directory_shard_owner(
      const std::string& name) const {
    return shard_owner(shard_of(name));
  }

private:
  struct Meta {
    std::size_t node = 0;
    bool fixed = false;
    bool in_transit = false;
    std::uint64_t locked_by = 0;  ///< move-token id, 0 = unlocked
    /// Lease deadline for the lock (meaningful while locked_by != 0 and
    /// Options::lock_lease is non-zero).
    std::chrono::steady_clock::time_point lease_expiry{};
    /// Last linearised state the directory has seen (creation or most
    /// recent migration) — the crash-recovery checkpoint.
    ObjectState checkpoint;
    /// Completed relocations of this object (location-history cursor;
    /// persisted in the store's checkpoint records).
    std::uint64_t moves = 0;
    /// The checkpoint is backed by the durable store — a fsynced WAL
    /// append or a recovery replay — so restart reconciliation counts its
    /// reinstall as a durable recovery, not just an in-memory one.
    bool durable = false;
  };

  struct AttachEdge {
    std::string peer;
    std::string alliance;
  };

  /// Sender id for messages not originating at any node (external clients,
  /// directory operations). Matches only wildcard fault rules.
  static constexpr std::size_t kExternalSender =
      static_cast<std::size_t>(-2);

  /// Attachment closure of `object` (requires `mutex_`).
  [[nodiscard]] std::vector<std::string> closure_locked(
      const std::string& object, const std::string& alliance) const;

  /// Physically relocates `objects` to `dest`; objects must already be
  /// marked in_transit. Returns the count actually moved.
  std::size_t relocate(const std::vector<std::string>& objects,
                       std::size_t dest);

  InvokeResult invoke_impl(std::optional<std::size_t> from,
                           const std::string& object,
                           const std::string& method,
                           const std::string& argument);

  /// True when the transport accepted the send; a typed rejection is
  /// counted and the caller retries (the peer may come back).
  bool sent_ok(transport::SendStatus status);

  /// Waits for a reply future, honouring Options::reply_timeout. nullopt =
  /// the message (or its processing node) died — retry.
  template <class T>
  std::optional<T> await_reply(std::future<T>& reply);

  /// Sleeps the exponential-backoff delay for retry `attempt` (>= 1).
  void backoff(int attempt);

  /// Installs `state` as `name` on `node` with bounded retries under one
  /// sequence number. Returns false if the node stayed unreachable.
  bool install_with_retry(std::size_t node, const std::string& name,
                          const ObjectState& state, std::size_t from);

  /// True once any fault machinery is active (injector, crash calls);
  /// gates the bounded-retry deviations from pre-fault behaviour.
  [[nodiscard]] bool faults_active() const;

  /// Releases every placement lock held by `token` (requires `mutex_`).
  void expire_lease(std::uint64_t token);
  /// True if `meta`'s lock lease has expired (requires `mutex_`).
  [[nodiscard]] bool lease_expired(const Meta& meta) const;

  /// True when Options::policy is one of the adaptive kinds.
  [[nodiscard]] bool adaptive_policy() const {
    return options_.policy == MovePolicy::Adaptive ||
           options_.policy == MovePolicy::AdaptiveLoad;
  }
  /// Feeds `object`'s locality EMA with one access from `from` (requires
  /// `mutex_`). No-op unless the policy is adaptive.
  void record_locality_locked(const std::string& object, std::size_t from);
  /// The adaptive placement decision for `object` (requires `mutex_`):
  /// the node to relocate the block's closure to — the object's current
  /// host when the EMA says stay (no data, dominant already hosts, band
  /// or load veto). Updates the policy counters and ping-pong state.
  [[nodiscard]] std::size_t adaptive_target_locked(
      const std::string& object, const std::string& alliance);

  /// Records a protocol event on the logical clock (requires `mutex_`).
  /// No-op without Options::trace. Pass kExternalSender as `node` for
  /// events without a node operand and 0 as `block` for blockless ones.
  void trace_locked(trace::EventKind kind, const std::string& object,
                    std::size_t node, std::uint64_t block = 0);
  /// Stable per-name trace id, assigned in first-use order (requires
  /// `mutex_`) — identical across transport backends for one workload.
  std::uint64_t object_trace_id_locked(const std::string& name);

  /// Replays the fault plan's crash schedule on wall-clock time.
  void run_fault_schedule();

  // --- sharded directory (DirectoryKind::Sharded) ------------------------
  [[nodiscard]] bool sharded() const {
    return options_.directory == objsys::DirectoryKind::Sharded;
  }
  /// Shard an object name hashes to (FNV-1a: stable across processes).
  [[nodiscard]] std::size_t shard_of(const std::string& name) const;
  /// Node serving a shard's slice of the directory.
  [[nodiscard]] std::size_t shard_owner(std::size_t shard) const {
    return shard % node_count();
  }
  /// Cache index for an origin (kExternalSender maps to the extra slot).
  [[nodiscard]] std::size_t cache_slot(
      std::optional<std::size_t> from) const {
    return from.value_or(node_count());
  }
  /// Publishes `name -> node` into the directory entry table served by
  /// `target` (or drops the entry when `invalidate`), with bounded
  /// retries. Best-effort: an unreachable target just stays stale — the
  /// resolve path tolerates that.
  bool dir_update(std::size_t target, const std::string& name,
                  std::size_t node, bool invalidate);
  /// One directory lookup served by `target`; nullopt = unreachable.
  std::optional<DirReply> dir_lookup(std::size_t from, std::size_t target,
                                     const std::string& name);
  /// Resolves an object's node through cache -> forwarding chase -> shard
  /// owner -> central-map fallback. `stale` names a node an invoke just
  /// found empty, triggering invalidation and a hint chase from there.
  std::size_t resolve_sharded(std::optional<std::size_t> from,
                              const std::string& object,
                              std::optional<std::size_t> stale);
  /// Announces a migration: slice update at the shard owner, forwarding
  /// hint at the old host, eager cache invalidation when configured.
  void dir_publish_move(const std::string& name, std::size_t src,
                        std::size_t dest);
  /// Re-seeds a restarted node's shard slice from the central map.
  void dir_reseed_node(std::size_t node);

  /// Rebuilds the directory from the recovered store and reinstalls every
  /// surviving object on its recorded node (start() with a data_dir).
  void recover_from_store();

  Options options_;
  std::unordered_map<std::string, ObjectFactory> factories_;
  std::vector<std::unique_ptr<LiveNode>> nodes_;
  bool started_ = false;

  mutable std::mutex mutex_;
  std::condition_variable transit_cv_;
  std::unordered_map<std::string, Meta> directory_;
  std::unordered_map<std::string, std::vector<AttachEdge>> attachments_;
  std::vector<char> node_down_;  ///< guarded by mutex_
  std::uint64_t next_token_ = 1;
  std::unordered_map<std::string, std::uint64_t> object_ids_;  ///< trace ids
  std::uint64_t next_object_id_ = 0;  ///< guarded by mutex_
  std::uint64_t trace_clock_ = 0;     ///< guarded by mutex_

  /// Access-locality telemetry (docs/policies.md); null unless the policy
  /// is adaptive. The tracker is dense-id keyed, so names get stable ids
  /// in first-invocation order. All guarded by mutex_.
  std::unique_ptr<objsys::LocalityTracker> locality_;
  std::unordered_map<std::string, std::uint32_t> locality_ids_;
  /// Last adaptive relocation per object (from, to) — ping-pong detector.
  std::unordered_map<std::string, std::pair<std::size_t, std::size_t>>
      last_policy_move_;
  /// Cached obs family ("adaptive" / "adaptive-load"); set in start().
  std::optional<obs::PolicyMetrics> policy_obs_;

  /// Per-origin lookup caches (node_count() + 1 entries; the last one
  /// serves external senders). Pointers because the caches hold mutexes.
  std::vector<std::unique_ptr<objsys::NamedLocationCache>> caches_;
  std::size_t dir_shards_ = 0;  ///< resolved shard count (0 until start())

  std::unique_ptr<fault::FaultInjector> injector_;
  /// Coordinator-level durable store (Options::data_dir); null = in-memory.
  std::unique_ptr<store::DurableStore> store_;
  /// Shared proactor loop in AsyncTcp mode (null otherwise). Declared
  /// before the servers and the transport so it destructs after them —
  /// their teardown posts final tasks onto it.
  std::unique_ptr<net::EventLoop> net_loop_;
  /// One frame server per local node in TCP mode (empty otherwise).
  std::vector<std::unique_ptr<transport::NodeServer>> servers_;
  std::unique_ptr<transport::Transport> transport_;
  /// transport_, when it is a socket backend (blocking or async).
  transport::SocketTransport* tcp_ = nullptr;

  std::mutex stop_mutex_;
  std::thread fault_thread_;
  std::mutex fault_mutex_;
  std::condition_variable fault_cv_;
  bool shutting_down_ = false;

  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> invocations_{0};
  std::atomic<std::uint64_t> remote_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> lease_expiries_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> durable_recoveries_{0};
  std::atomic<std::uint64_t> replayed_objects_{0};
  std::atomic<std::uint64_t> send_rejections_{0};
  std::atomic<std::uint64_t> dir_lookups_{0};
  std::atomic<std::uint64_t> dir_cache_hits_{0};
  std::atomic<std::uint64_t> dir_stale_hits_{0};
  std::atomic<std::uint64_t> dir_hops_{0};
  std::atomic<std::uint64_t> dir_updates_{0};
  std::atomic<std::uint64_t> dir_invalidations_{0};
  std::atomic<std::uint64_t> dir_fallbacks_{0};
  std::atomic<std::uint64_t> policy_migrations_{0};
  std::atomic<std::uint64_t> policy_suppressed_hysteresis_{0};
  std::atomic<std::uint64_t> policy_suppressed_load_{0};
  std::atomic<std::uint64_t> policy_reversals_{0};
  std::atomic<std::uint64_t> ema_updates_{0};
};

}  // namespace omig::runtime
