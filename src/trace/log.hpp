// Bounded trace log with query helpers.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.hpp"

namespace omig::trace {

/// Records up to `capacity` most-recent events (older ones are dropped —
/// a trace is a window, not an unbounded archive). Attach one to a
/// MigrationManager to instrument a run; detached by default, zero cost.
///
/// Storage is a flat ring buffer: record() is an indexed store with no
/// allocation once the window has filled (the deque it replaced allocated
/// a block roughly every 500 events, forever), and clear() keeps the
/// buffer's capacity for the next run.
class TraceLog {
public:
  explicit TraceLog(std::size_t capacity = 65'536);

  void record(const Event& event);

  /// Number of events currently retained.
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Total events ever recorded (including dropped ones).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// True if older events have been dropped.
  [[nodiscard]] bool truncated() const { return recorded_ > ring_.size(); }

  /// The retained window in time order (oldest first), materialized from
  /// the ring. A by-value snapshot: fine for tests and exporters; hot
  /// in-process consumers should use the query helpers instead.
  [[nodiscard]] std::vector<Event> events() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    visit([&](const Event& e) { out.push_back(e); });
    return out;
  }

  /// Events satisfying a predicate (in time order).
  [[nodiscard]] std::vector<Event> select(
      const std::function<bool(const Event&)>& pred) const;

  /// All events of one kind / touching one object.
  [[nodiscard]] std::vector<Event> of_kind(EventKind kind) const;
  [[nodiscard]] std::vector<Event> for_object(objsys::ObjectId obj) const;
  [[nodiscard]] std::size_t count(EventKind kind) const;

  /// Human-readable timeline ("t=12.3  migration-end  obj #2 -> node #1").
  [[nodiscard]] std::string render(std::size_t max_lines = 200) const;

  /// Machine-readable export: one JSON object per line
  /// ({"t":..,"kind":"..","obj":..,"node":..,"blk":..}; absent operands are
  /// omitted). Returns the number of events written.
  std::size_t to_jsonl(std::ostream& os) const;

  /// Chrome trace-event export (load via chrome://tracing or Perfetto):
  /// MigrationStart/MigrationEnd become paired async "b"/"e" events (one
  /// lane per object, so transits read as spans), everything else an
  /// instant event on the row of the node it names. Timestamps are the
  /// event times scaled to microseconds with displayTimeUnit "ms", so one
  /// trace-time unit renders as one millisecond. Returns the number of
  /// events written.
  std::size_t to_chrome_json(std::ostream& os) const;

  void clear();

  /// Visits every retained event oldest-first without materializing a copy.
  template <class F>
  void visit(F&& f) const {
    // head_ is the overwrite cursor; once the ring is full it also marks
    // the oldest event.
    for (std::size_t i = head_; i < ring_.size(); ++i) f(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i) f(ring_[i]);
  }

private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< next slot to overwrite once full
  std::uint64_t recorded_ = 0;
};

/// Protocol-invariant checks over a recorded history. Each returns an
/// empty string on success or a description of the first violation.
namespace check {

/// Every Lock has a matching later Unlock for the same (object, block),
/// except locks still held at the end of the trace (reported via
/// `allow_open`).
std::string locks_balance(const TraceLog& log, bool allow_open = true);

/// MigrationStart/MigrationEnd strictly alternate per object.
std::string transits_alternate(const TraceLog& log);

/// A block that was refused never has a MigrationStart attributed to it.
std::string refused_blocks_never_migrate(const TraceLog& log);

}  // namespace check

}  // namespace omig::trace
