#include "trace/log.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace omig::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::BlockBegin:
      return "block-begin";
    case EventKind::BlockEnd:
      return "block-end";
    case EventKind::MoveRequest:
      return "move-request";
    case EventKind::MoveRefused:
      return "move-refused";
    case EventKind::MigrationStart:
      return "migration-start";
    case EventKind::MigrationEnd:
      return "migration-end";
    case EventKind::Lock:
      return "lock";
    case EventKind::Unlock:
      return "unlock";
    case EventKind::Fix:
      return "fix";
    case EventKind::Unfix:
      return "unfix";
    case EventKind::ReplicaCreated:
      return "replica-created";
  }
  return "unknown";
}

TraceLog::TraceLog(std::size_t capacity) : capacity_{capacity} {
  OMIG_REQUIRE(capacity >= 1, "trace needs capacity");
}

void TraceLog::record(const Event& event) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    // Full: overwrite the oldest slot in place — no allocation, ever.
    ring_[head_] = event;
    if (++head_ == capacity_) head_ = 0;
  }
}

std::vector<Event> TraceLog::select(
    const std::function<bool(const Event&)>& pred) const {
  std::vector<Event> out;
  visit([&](const Event& e) {
    if (pred(e)) out.push_back(e);
  });
  return out;
}

std::vector<Event> TraceLog::of_kind(EventKind kind) const {
  return select([kind](const Event& e) { return e.kind == kind; });
}

std::vector<Event> TraceLog::for_object(objsys::ObjectId obj) const {
  return select([obj](const Event& e) { return e.object == obj; });
}

std::size_t TraceLog::count(EventKind kind) const {
  std::size_t n = 0;
  visit([&](const Event& e) {
    if (e.kind == kind) ++n;
  });
  return n;
}

std::string TraceLog::render(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t skip = 0;
  if (ring_.size() > max_lines) {
    skip = ring_.size() - max_lines;
    os << "... (" << skip << " earlier events)\n";
  }
  std::size_t index = 0;
  visit([&](const Event& e) {
    if (index++ < skip) return;
    os << "t=" << e.time << "  " << to_string(e.kind);
    if (e.object.valid()) os << "  obj " << e.object;
    if (e.node.valid()) os << "  node " << e.node;
    if (e.block.valid()) os << "  blk " << e.block;
    os << '\n';
  });
  return os.str();
}
// (render shows the tail of the window: the most recent events are the
// ones an operator debugging a live run cares about.)

std::size_t TraceLog::to_jsonl(std::ostream& os) const {
  visit([&](const Event& e) {
    os << "{\"t\":" << e.time << ",\"kind\":\"" << to_string(e.kind)
       << '"';
    if (e.object.valid()) os << ",\"obj\":" << e.object.value();
    if (e.node.valid()) os << ",\"node\":" << e.node.value();
    if (e.block.valid()) os << ",\"blk\":" << e.block.value();
    os << "}\n";
  });
  return ring_.size();
}

std::size_t TraceLog::to_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  visit([&](const Event& e) {
    if (!first) os << ',';
    first = false;
    // One trace-time unit = 1000 Chrome microseconds = 1 displayed ms.
    const double ts = e.time * 1000.0;
    const std::uint64_t tid = e.node.valid() ? e.node.value() : 0;
    const bool transit = e.kind == EventKind::MigrationStart ||
                         e.kind == EventKind::MigrationEnd;
    // Both halves of an async pair must carry the same name, so a transit
    // is always "transit"; the viewer keys the pair by the object id and
    // draws it as a span on the object's own lane.
    os << "\n{\"name\":\"" << (transit ? "transit" : to_string(e.kind))
       << "\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << ts;
    if (transit) {
      os << ",\"ph\":\"" << (e.kind == EventKind::MigrationStart ? 'b' : 'e')
         << "\",\"cat\":\"migration\",\"id\":" << e.object.value();
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"protocol\"";
    }
    os << ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, std::uint64_t value) {
      if (!first_arg) os << ',';
      first_arg = false;
      os << '"' << key << "\":" << value;
    };
    if (e.object.valid()) arg("obj", e.object.value());
    if (e.node.valid()) arg("node", e.node.value());
    if (e.block.valid()) arg("blk", e.block.value());
    os << "}}";
  });
  os << "\n]}\n";
  return ring_.size();
}

void TraceLog::clear() {
  // Keep the ring's capacity: a trace window is sized once and reused
  // across runs.
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

namespace check {

std::string locks_balance(const TraceLog& log, bool allow_open) {
  std::map<std::pair<objsys::ObjectId, objsys::BlockId>, int> held;
  for (const Event& e : log.events()) {
    const auto key = std::make_pair(e.object, e.block);
    if (e.kind == EventKind::Lock) {
      if (++held[key] > 1) {
        std::ostringstream os;
        os << "object " << e.object << " double-locked by block " << e.block
           << " at t=" << e.time;
        return os.str();
      }
    } else if (e.kind == EventKind::Unlock) {
      if (--held[key] < 0) {
        std::ostringstream os;
        os << "object " << e.object << " unlocked by block " << e.block
           << " without a lock at t=" << e.time;
        return os.str();
      }
    }
  }
  if (!allow_open) {
    for (const auto& [key, count] : held) {
      if (count != 0) {
        std::ostringstream os;
        os << "object " << key.first << " still locked by block "
           << key.second << " at end of trace";
        return os.str();
      }
    }
  }
  return {};
}

std::string transits_alternate(const TraceLog& log) {
  std::map<objsys::ObjectId, bool> in_transit;
  for (const Event& e : log.events()) {
    if (e.kind == EventKind::MigrationStart) {
      if (in_transit[e.object]) {
        std::ostringstream os;
        os << "object " << e.object << " started a second transit at t="
           << e.time;
        return os.str();
      }
      in_transit[e.object] = true;
    } else if (e.kind == EventKind::MigrationEnd) {
      if (!in_transit[e.object]) {
        std::ostringstream os;
        os << "object " << e.object << " ended a transit it never started"
           << " at t=" << e.time;
        return os.str();
      }
      in_transit[e.object] = false;
    }
  }
  return {};
}

std::string refused_blocks_never_migrate(const TraceLog& log) {
  std::map<objsys::BlockId, bool> refused;
  for (const Event& e : log.events()) {
    if (e.kind == EventKind::MoveRefused && e.block.valid()) {
      refused[e.block] = true;
    } else if (e.kind == EventKind::MigrationStart && e.block.valid()) {
      if (refused.contains(e.block)) {
        std::ostringstream os;
        os << "block " << e.block << " was refused but migrated object "
           << e.object << " at t=" << e.time;
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace check

}  // namespace omig::trace
