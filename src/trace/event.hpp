// Typed trace events emitted by the migration runtime.
//
// Traces serve two purposes: (1) debugging/diagnosis — an operator can
// render the timeline of who moved what where and which moves were
// refused; (2) verification — the property tests assert protocol
// invariants (locks balance, transits nest, refused blocks never migrate)
// over recorded histories instead of poking at internals.
#pragma once

#include <cstdint>

#include "objsys/ids.hpp"
#include "sim/time.hpp"

namespace omig::trace {

enum class EventKind : std::uint8_t {
  BlockBegin,      ///< a move()/visit() block opened (object = target)
  BlockEnd,        ///< its end-request was issued
  MoveRequest,     ///< request message dispatched towards the object
  MoveRefused,     ///< placement/dynamic policy refused the move
  MigrationStart,  ///< object entered transit (node = destination)
  MigrationEnd,    ///< object reinstalled (node = destination)
  Lock,            ///< placement lock acquired
  Unlock,          ///< placement lock released
  Fix,             ///< object fixed
  Unfix,           ///< object unfixed
  ReplicaCreated,  ///< copy of an immutable object installed (node = where)
};

[[nodiscard]] const char* to_string(EventKind kind);

/// One timeline entry. `block` is invalid for events not tied to a block
/// (background migrations, fix/unfix); `node` is the event's node operand
/// (origin of a request, destination of a migration).
struct Event {
  sim::SimTime time = 0.0;
  EventKind kind = EventKind::BlockBegin;
  objsys::ObjectId object = objsys::ObjectId::invalid();
  objsys::NodeId node = objsys::NodeId::invalid();
  objsys::BlockId block = objsys::BlockId::invalid();
};

}  // namespace omig::trace
