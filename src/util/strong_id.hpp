// Strongly typed integer identifiers.
//
// The object system juggles several id spaces (nodes, objects, alliances,
// move-blocks). Using a distinct C++ type per space makes it impossible to
// pass a NodeId where an ObjectId is expected (Core Guidelines Per.10 /
// I.4: rely on the static type system; make interfaces precisely typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace omig {

/// A strongly typed wrapper around a 32-bit index. `Tag` is a phantom type
/// that distinguishes the id spaces. Values are totally ordered so ids can
/// key ordered containers; `invalid()` is an explicit sentinel.
template <class Tag>
class StrongId {
public:
  using value_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_{v} {}

  /// Sentinel id used for "no such entity".
  static constexpr StrongId invalid() {
    return StrongId{std::numeric_limits<value_type>::max()};
  }

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return *this != invalid(); }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << '#' << id.value_;
  }

private:
  value_type value_ = std::numeric_limits<value_type>::max();
};

}  // namespace omig

template <class Tag>
struct std::hash<omig::StrongId<Tag>> {
  std::size_t operator()(omig::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
