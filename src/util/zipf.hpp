// Seeded Zipf(θ) sampler over a finite key space.
//
// The scenario pack's cache tier (docs/scenarios.md) models hot-key skew:
// key k has probability ∝ 1/(k+1)^θ. We sample by exact inverse-CDF over a
// precomputed cumulative table — O(n) memory once per scenario, O(log n)
// per draw, and the distribution is exact (the chi-square test in
// tests/scenario/zipf_test.cpp pins it), unlike the usual YCSB
// rejection-inversion approximation. All randomness comes from the
// caller's sim::Rng stream, so draws inherit the per-source seeding
// discipline and sweeps stay bit-identical at any thread count.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "util/assert.hpp"

namespace omig::util {

class ZipfSampler {
public:
  /// Distribution over ranks [0, n): P(k) ∝ 1/(k+1)^theta. theta = 0 is
  /// uniform; theta ≈ 1 is the classic Zipf web/cache skew.
  ZipfSampler(std::uint64_t n, double theta) : theta_{theta} {
    OMIG_REQUIRE(n >= 1, "ZipfSampler needs at least one rank");
    OMIG_REQUIRE(theta >= 0.0, "ZipfSampler exponent must be >= 0");
    cdf_.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
      total += std::pow(static_cast<double>(k + 1), -theta);
      cdf_.push_back(total);
    }
    // Normalise so the final entry is exactly 1: uniform() < 1 always lands.
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;
  }

  /// One draw; consumes exactly one uniform() from `rng`.
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const {
    const double u = rng.uniform();
    // First rank whose cumulative probability exceeds u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Exact P(rank = k), for distribution tests.
  [[nodiscard]] double probability(std::uint64_t k) const {
    OMIG_REQUIRE(k < cdf_.size(), "rank out of range");
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

  [[nodiscard]] std::uint64_t size() const { return cdf_.size(); }
  [[nodiscard]] double theta() const { return theta_; }

private:
  double theta_;
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k)
};

}  // namespace omig::util
