// Work-stealing thread pool for embarrassingly parallel experiment grids.
//
// The pool is deliberately small and policy-free (cf. Walker et al.'s
// separation of transmission policy from mechanism): callers describe *what*
// to run — an index space and a function — and the executor decides *where*.
// Determinism must therefore never come from the executor; anything seeded
// per task has to derive its seed from the task index, not from thread
// identity or completion order (see core::cell_seed).
//
// Scheduling: each worker owns a deque; owners push/pop at the back, idle
// threads steal from the front of other deques. The thread that calls
// parallel_for participates in the work loop, so nested parallel_for calls
// from inside a task execute inline-or-stolen and cannot deadlock.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace omig::util {

class Executor {
public:
  /// `threads == 0` means hardware_concurrency; `threads == 1` spawns no
  /// worker threads at all — parallel_for then runs inline, in index order,
  /// on the calling thread (the exact sequential code path).
  explicit Executor(std::size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of threads that execute tasks (including the caller).
  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// `max(1, std::thread::hardware_concurrency())`.
  [[nodiscard]] static std::size_t default_thread_count();

  /// Runs fn(0) ... fn(n-1) across the pool and blocks until every task has
  /// finished. Every task runs even if some throw; once all are done the
  /// exception of the *lowest* failing index is rethrown, so the error
  /// surfaced is independent of scheduling order. Safe to call from inside
  /// a task (the nested call helps execute queued work instead of blocking
  /// a worker). With n == 0 this is a no-op.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
  struct Impl;
  std::size_t threads_;
  std::unique_ptr<Impl> impl_;  ///< null when threads_ == 1
};

}  // namespace omig::util
