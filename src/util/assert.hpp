// Assertion and invariant-checking support for the omig library.
//
// We throw (rather than abort) so that unit tests can verify that invariant
// violations are detected, and so that long simulation sweeps fail with a
// diagnosable message instead of a core dump.
#pragma once

#include <stdexcept>
#include <string>

namespace omig {

/// Error thrown when an OMIG_ASSERT / OMIG_REQUIRE condition fails.
class AssertionError : public std::logic_error {
public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace omig

/// Internal invariant check. Active in all build types: the simulator is the
/// evaluation instrument, so silent corruption is worse than the (tiny) cost.
#define OMIG_ASSERT(expr)                                                     \
  do {                                                                        \
    if (!(expr)) ::omig::detail::assertion_failed(#expr, __FILE__, __LINE__,  \
                                                  std::string{});             \
  } while (false)

/// Precondition check with an explanatory message (public API boundaries).
#define OMIG_REQUIRE(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) ::omig::detail::assertion_failed(#expr, __FILE__, __LINE__,  \
                                                  std::string{msg});          \
  } while (false)
