#include "util/assert.hpp"

#include <sstream>

namespace omig::detail {

void assertion_failed(const char* expr, const char* file, int line,
                      const std::string& msg) {
  std::ostringstream os;
  os << "omig assertion failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError{os.str()};
}

}  // namespace omig::detail
