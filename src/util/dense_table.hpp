// Dense table keyed by a StrongId.
//
// The simulator's id spaces are contiguous: every ObjectId/NodeId is handed
// out sequentially by a registry, so a map keyed by one is really a sparse
// array in disguise. This container stores the values in a flat slot vector
// indexed by `id.value()` plus a byte per slot marking occupancy — lookups
// are one bounds check and one indexed load instead of a hash, and clear()
// keeps the slots' capacity for the next run.
//
// Iteration (for_each) visits occupied slots in ascending id order, so —
// unlike the unordered_maps this replaces — it is deterministic. Callers
// that previously tolerated unordered iteration are unaffected; callers
// that iterate get a stable order for free.
//
// Not a general map: memory is proportional to the largest id ever
// inserted, which is exactly right for registry-allocated ids and wrong for
// sparse ones.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace omig::util {

template <class Id, class T>
class DenseTable {
public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool contains(Id id) const {
    const std::size_t i = index(id);
    return i < used_.size() && used_[i];
  }

  /// Pointer to the value for `id`, or nullptr if absent.
  [[nodiscard]] T* find(Id id) {
    const std::size_t i = index(id);
    return i < used_.size() && used_[i] ? &slots_[i] : nullptr;
  }
  [[nodiscard]] const T* find(Id id) const {
    const std::size_t i = index(id);
    return i < used_.size() && used_[i] ? &slots_[i] : nullptr;
  }

  /// Value for `id`, default-constructing it if absent.
  T& operator[](Id id) { return try_emplace(id).first; }

  /// Inserts T{args...} under `id` if absent. Returns {value, inserted}.
  template <class... Args>
  std::pair<T&, bool> try_emplace(Id id, Args&&... args) {
    const std::size_t i = index(id);
    grow_to(i + 1);
    if (!used_[i]) {
      slots_[i] = T(std::forward<Args>(args)...);
      used_[i] = 1;
      ++size_;
      return {slots_[i], true};
    }
    return {slots_[i], false};
  }

  /// Removes `id`. Returns whether it was present. The slot object itself
  /// is kept (only marked unused) and reset by assignment on re-insert, so
  /// erase is O(1) with no deallocation of the slot vector.
  bool erase(Id id) {
    const std::size_t i = index(id);
    if (i >= used_.size() || !used_[i]) return false;
    used_[i] = 0;
    --size_;
    return true;
  }

  /// Drops every entry but keeps the slot capacity.
  void clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  /// Visits (Id, const T&) for every occupied slot in ascending id order.
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) f(Id{static_cast<typename Id::value_type>(i)}, slots_[i]);
    }
  }

private:
  [[nodiscard]] static std::size_t index(Id id) {
    OMIG_ASSERT(id.valid());
    return id.value();
  }

  void grow_to(std::size_t n) {
    if (n > used_.size()) {
      slots_.resize(n);
      used_.resize(n, 0);
    }
  }

  std::vector<T> slots_;
  std::vector<std::uint8_t> used_;  ///< 1 = slot occupied
  std::size_t size_ = 0;
};

}  // namespace omig::util
