#include "util/executor.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace omig::util {

namespace {

// Which deque the current thread owns: workers get 1..N-1, every external
// thread shares deque 0. Lets nested parallel_for push to the local deque.
thread_local std::size_t tls_deque = 0;

}  // namespace

struct Executor::Impl {
  struct Deque {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  // One shared batch per parallel_for call; tasks hold a reference.
  struct Batch {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;  ///< slot per index, no races

    explicit Batch(std::size_t n) : remaining{n}, errors(n) {}
  };

  explicit Impl(std::size_t threads) : deques(threads) {
    for (auto& d : deques) d = std::make_unique<Deque>();
    workers.reserve(threads - 1);
    for (std::size_t id = 1; id < threads; ++id) {
      workers.emplace_back([this, id] { worker_loop(id); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk{wake_m};
      stop = true;
    }
    wake_cv.notify_all();
    for (auto& w : workers) w.join();
  }

  void push(std::size_t deque_index, std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk{deques[deque_index]->m};
      deques[deque_index]->q.push_back(std::move(task));
    }
    {
      std::lock_guard<std::mutex> lk{wake_m};
      ++pending;
    }
    wake_cv.notify_one();
  }

  /// Own deque from the back (LIFO, cache-warm), other deques from the
  /// front (FIFO steal). Returns false when every deque is empty.
  bool try_pop(std::size_t self, std::function<void()>& out) {
    const std::size_t n = deques.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (self + k) % n;
      Deque& d = *deques[i];
      std::lock_guard<std::mutex> lk{d.m};
      if (d.q.empty()) continue;
      if (i == self) {
        out = std::move(d.q.back());
        d.q.pop_back();
      } else {
        out = std::move(d.q.front());
        d.q.pop_front();
      }
      std::lock_guard<std::mutex> wl{wake_m};
      --pending;
      return true;
    }
    return false;
  }

  void worker_loop(std::size_t id) {
    tls_deque = id;
    std::function<void()> task;
    while (true) {
      if (try_pop(id, task)) {
        task();
        task = nullptr;
        continue;
      }
      std::unique_lock<std::mutex> lk{wake_m};
      wake_cv.wait(lk, [this] { return stop || pending > 0; });
      if (stop && pending == 0) return;
    }
  }

  std::vector<std::unique_ptr<Deque>> deques;
  std::vector<std::thread> workers;
  std::mutex wake_m;
  std::condition_variable wake_cv;
  std::size_t pending = 0;  ///< queued-but-unclaimed tasks, guarded by wake_m
  bool stop = false;        ///< guarded by wake_m
};

Executor::Executor(std::size_t threads)
    : threads_{threads == 0 ? default_thread_count() : threads} {
  if (threads_ > 1) impl_ = std::make_unique<Impl>(threads_);
}

Executor::~Executor() = default;

std::size_t Executor::thread_count() const noexcept { return threads_; }

std::size_t Executor::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (impl_ == nullptr) {
    // Single-threaded: run inline, in index order. Exceptions behave as in
    // the pooled path — every task runs, the lowest failing index wins.
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (first == nullptr) first = std::current_exception();
      }
    }
    if (first != nullptr) std::rethrow_exception(first);
    return;
  }

  auto batch = std::make_shared<Impl::Batch>(n);
  const std::size_t self = tls_deque;
  for (std::size_t i = 0; i < n; ++i) {
    // Round-robin starting at the caller's own deque so sleeping workers
    // wake up with local work and the caller keeps some for itself.
    const std::size_t target = (self + i) % impl_->deques.size();
    impl_->push(target, [batch, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        batch->errors[i] = std::current_exception();
      }
      std::lock_guard<std::mutex> lk{batch->m};
      if (--batch->remaining == 0) batch->done.notify_all();
    });
  }

  // The caller works too: drain our own deque / steal until the batch is
  // complete. Tasks of *other* batches may be executed here as well — that
  // only helps global progress and is what makes nesting deadlock-free.
  std::function<void()> task;
  while (true) {
    {
      std::unique_lock<std::mutex> lk{batch->m};
      if (batch->remaining == 0) break;
    }
    if (impl_->try_pop(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk{batch->m};
    batch->done.wait(lk, [&] { return batch->remaining == 0; });
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (batch->errors[i] != nullptr) std::rethrow_exception(batch->errors[i]);
  }
}

}  // namespace omig::util
