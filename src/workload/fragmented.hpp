// Fragmented-object workload (paper Section 5 outlook; cf. the fragmented
// objects of [MGL+94] the paper cites in its introduction).
//
// One logical service is either a *monolith* (a single object carrying all
// the state, migration cost F·M) or *fragmented* into F objects of cost M
// each. Every client's calls touch only its *view* — `view_size`
// consecutive fragments (views overlap in a ring, like the Figure-7
// working sets). Move-blocks gather the client's view; under the
// monolith, everybody fights over one big object instead.
//
// The outlook question this answers: does fragmentation show the same
// non-monolithic degradation as migration? (It reduces the conflict
// surface — you only steal what you actually use — but overlapping views
// still collide; see bench_outlook_fragmentation.)
#pragma once

#include <vector>

#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "objsys/invocation.hpp"
#include "workload/observer.hpp"
#include "workload/params.hpp"

namespace omig::workload {

/// The built population of a fragmented experiment.
struct FragmentedWorkload {
  /// The fragments (or the single monolith when params.monolithic).
  std::vector<objsys::ObjectId> fragments;
  /// Per client: the fragments its calls touch.
  std::vector<std::vector<objsys::ObjectId>> views;
  /// Per client: the alliance scoping its view's attachments.
  std::vector<objsys::AllianceId> alliances;
};

/// Creates the fragments (round-robin over nodes; one object of size F in
/// monolithic mode), the ring-overlapping views, one alliance per client,
/// and the intra-view attachments (labelled with the client's alliance).
FragmentedWorkload build_fragmented(objsys::ObjectRegistry& registry,
                                    migration::AttachmentGraph& attachments,
                                    migration::AllianceRegistry& alliances,
                                    const WorkloadParams& params);

struct FragmentedClientEnv {
  sim::Engine* engine;
  migration::MigrationManager* manager;
  migration::MigrationPolicy* policy;
  objsys::Invoker* invoker;
  BlockObserver* observer;
  WorkloadParams params;
  FragmentedWorkload workload;
  std::uint64_t seed;
};

/// Client `index`: move-blocks target the first fragment of its view in
/// the view's alliance context; each call scans the whole view (one
/// sequential invocation per fragment — the measured duration covers the
/// scan).
sim::Task fragmented_client(FragmentedClientEnv env, int index);

/// Builds the workload and spawns all C client processes.
FragmentedWorkload spawn_fragmented(sim::Engine& engine,
                                    objsys::ObjectRegistry& registry,
                                    migration::MigrationManager& manager,
                                    migration::MigrationPolicy& policy,
                                    objsys::Invoker& invoker,
                                    BlockObserver& observer,
                                    const WorkloadParams& params,
                                    std::uint64_t seed);

}  // namespace omig::workload
