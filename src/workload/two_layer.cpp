#include "workload/two_layer.hpp"

#include <string>

#include "util/assert.hpp"

namespace omig::workload {

TwoLayerWorkload build_two_layer(objsys::ObjectRegistry& registry,
                                 migration::AttachmentGraph& attachments,
                                 migration::AllianceRegistry& alliances,
                                 const WorkloadParams& params) {
  validate(params);
  OMIG_REQUIRE(params.servers2 > 0,
               "two-layer workload needs second-layer servers");

  TwoLayerWorkload w;
  for (int j = 0; j < params.servers1; ++j) {
    w.servers1.push_back(registry.create("S1-" + std::to_string(j),
                                         server1_node(params, j)));
  }
  for (int k = 0; k < params.servers2; ++k) {
    w.servers2.push_back(registry.create("S2-" + std::to_string(k),
                                         server2_node(params, k)));
  }

  // Ring-overlapping working sets: WS_i = {S2_i, …, S2_(i+w−1 mod S2)}.
  // For w >= 2 and S1 = S2 this connects all servers into one attachment
  // component — the worst case Section 4.4 considers.
  w.working_sets.resize(static_cast<std::size_t>(params.servers1));
  w.alliances.reserve(static_cast<std::size_t>(params.servers1));
  for (int i = 0; i < params.servers1; ++i) {
    const objsys::AllianceId a =
        alliances.create("alliance-" + std::to_string(i));
    w.alliances.push_back(a);
    alliances.add_member(a, w.servers1[static_cast<std::size_t>(i)]);
    for (int d = 0; d < params.working_set_size; ++d) {
      const auto k = static_cast<std::size_t>((i + d) % params.servers2);
      w.working_sets[static_cast<std::size_t>(i)].push_back(w.servers2[k]);
      alliances.add_member(a, w.servers2[k]);
      // Attachment issued in the context of this alliance: the server is
      // kept together with its working set.
      attachments.attach(w.servers1[static_cast<std::size_t>(i)],
                         w.servers2[k], a);
    }
  }
  return w;
}

sim::Task two_layer_client(TwoLayerClientEnv env, int index) {
  const objsys::NodeId me = client_node(env.params, index);
  sim::Rng rng{env.seed, 100 + static_cast<std::uint64_t>(index)};
  const auto& w = env.workload;

  for (;;) {
    co_await env.engine->delay(rng.exponential(env.params.mean_interblock));

    const std::size_t s1 = rng.uniform_int(w.servers1.size());
    const objsys::ObjectId target = w.servers1[s1];
    // The migration primitive is unambiguously related to one alliance
    // (Section 3.4) — the working-set context of the chosen server.
    migration::MoveBlock blk = env.manager->new_block(
        me, target, w.alliances[s1], env.params.use_visit);

    co_await env.policy->begin_block(blk);

    const int n = rng.exponential_count(env.params.mean_calls);
    const auto& ws = w.working_sets[s1];
    for (int i = 0; i < n; ++i) {
      co_await env.engine->delay(rng.exponential(env.params.mean_intercall));
      const auto kind = env.params.read_fraction > 0.0 &&
                                rng.uniform() < env.params.read_fraction
                            ? objsys::InvocationKind::Read
                            : objsys::InvocationKind::Write;
      const sim::SimTime start = env.engine->now();
      // Client invokes the first-layer server, which in turn uses exactly
      // one (uniformly chosen) member of its working set.
      co_await env.invoker->invoke(me, target, kind);
      co_await env.invoker->invoke_from_object(
          target, ws[rng.uniform_int(ws.size())], kind);
      const sim::SimTime duration = env.engine->now() - start;
      env.observer->on_call(duration);
      blk.call_time += duration;
      ++blk.calls;
    }

    env.policy->end_block(blk);
    env.observer->on_block(blk);
  }
}

TwoLayerWorkload spawn_two_layer(sim::Engine& engine,
                                 objsys::ObjectRegistry& registry,
                                 migration::MigrationManager& manager,
                                 migration::MigrationPolicy& policy,
                                 objsys::Invoker& invoker,
                                 BlockObserver& observer,
                                 const WorkloadParams& params,
                                 std::uint64_t seed) {
  TwoLayerWorkload w = build_two_layer(registry, manager.attachments(),
                                       manager.alliances(), params);
  TwoLayerClientEnv env{&engine, &manager, &policy, &invoker, &observer,
                        params,  w,        seed};
  for (int i = 0; i < params.clients; ++i) {
    engine.spawn(two_layer_client(env, i));
  }
  return w;
}

}  // namespace omig::workload
