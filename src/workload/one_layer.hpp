// One-layer client/server workload (paper Figure 6).
//
// Sedentary clients repeatedly run move-blocks against a pool of mobile
// servers: wait t_m, move(server → own node), perform N invocations spaced
// t_i apart, end. "Because clients are not invoked from other objects,
// there is no point in migrating them. Hence, they are sedentary. Only
// servers move during the simulation."
#pragma once

#include <vector>

#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "objsys/invocation.hpp"
#include "workload/observer.hpp"
#include "workload/params.hpp"

namespace omig::workload {

/// The built population of a one-layer experiment.
struct OneLayerWorkload {
  std::vector<objsys::ObjectId> servers;
};

/// Creates the S1 servers (round-robin over nodes). Clients are pure
/// processes, not registry objects — they never receive calls.
OneLayerWorkload build_one_layer(objsys::ObjectRegistry& registry,
                                 const WorkloadParams& params);

/// Everything a client process needs. Copied by value into the coroutine
/// frame; the pointed-to services must outlive the simulation run.
struct ClientEnv {
  sim::Engine* engine;
  migration::MigrationManager* manager;
  migration::MigrationPolicy* policy;
  objsys::Invoker* invoker;
  BlockObserver* observer;
  WorkloadParams params;
  std::vector<objsys::ObjectId> servers;
  std::uint64_t seed;
};

/// The endless move-block loop of client `index` (paper Figure 2 adapted):
/// runs until the engine stops it.
sim::Task one_layer_client(ClientEnv env, int index);

/// Builds the workload and spawns all C client processes.
OneLayerWorkload spawn_one_layer(sim::Engine& engine,
                                 objsys::ObjectRegistry& registry,
                                 migration::MigrationManager& manager,
                                 migration::MigrationPolicy& policy,
                                 objsys::Invoker& invoker,
                                 BlockObserver& observer,
                                 const WorkloadParams& params,
                                 std::uint64_t seed);

/// Mixed-policy variant (the non-monolithic case proper): client `i` runs
/// under `policies[i]`. Requires `policies.size() == params.clients`.
OneLayerWorkload spawn_one_layer_mixed(
    sim::Engine& engine, objsys::ObjectRegistry& registry,
    migration::MigrationManager& manager,
    const std::vector<migration::MigrationPolicy*>& policies,
    objsys::Invoker& invoker, BlockObserver& observer,
    const WorkloadParams& params, std::uint64_t seed);

}  // namespace omig::workload
