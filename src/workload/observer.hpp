// Observer interface decoupling the workload from metric collection.
#pragma once

#include "migration/block.hpp"

namespace omig::workload {

/// Receives completed move-blocks and background migration costs. The
/// experiment driver's Recorder implements this; tests plug in fakes.
class BlockObserver {
public:
  virtual ~BlockObserver() = default;

  /// A move-block finished: `blk.calls` invocations with total duration
  /// `blk.call_time`, plus `blk.migration_cost` of migration overhead.
  virtual void on_block(const migration::MoveBlock& blk) = 0;

  /// Migration cost not attributable to any block (e.g. reinstantiation
  /// migrations triggered by end-requests).
  virtual void on_background_migration(double cost) = 0;

  /// One completed invocation and its duration (includes blocked-on-transit
  /// time). Default no-op: only consumers interested in the distribution
  /// (tail latency) override this.
  virtual void on_call(double duration) { (void)duration; }
};

}  // namespace omig::workload
