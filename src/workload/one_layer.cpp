#include "workload/one_layer.hpp"

#include <string>

#include "util/assert.hpp"

namespace omig::workload {

OneLayerWorkload build_one_layer(objsys::ObjectRegistry& registry,
                                 const WorkloadParams& params) {
  validate(params);
  OMIG_REQUIRE(params.servers2 == 0,
               "one-layer workload must not declare second-layer servers");
  OneLayerWorkload w;
  w.servers.reserve(static_cast<std::size_t>(params.servers1));
  for (int j = 0; j < params.servers1; ++j) {
    w.servers.push_back(registry.create("S1-" + std::to_string(j),
                                        server1_node(params, j),
                                        /*size=*/1.0, /*mobile=*/true,
                                        params.immutable_servers));
  }
  return w;
}

sim::Task one_layer_client(ClientEnv env, int index) {
  const objsys::NodeId me = client_node(env.params, index);
  // Independent stream per client: draws of one client are unaffected by
  // how many other clients exist.
  sim::Rng rng{env.seed, 100 + static_cast<std::uint64_t>(index)};

  for (;;) {
    co_await env.engine->delay(rng.exponential(env.params.mean_interblock));

    // Each block targets a uniformly chosen server (every client can
    // communicate with every server).
    const objsys::ObjectId target =
        env.servers[rng.uniform_int(env.servers.size())];
    migration::MoveBlock blk =
        env.manager->new_block(me, target, objsys::AllianceId::invalid(),
                               env.params.use_visit);

    co_await env.policy->begin_block(blk);

    const int n = rng.exponential_count(env.params.mean_calls);
    for (int i = 0; i < n; ++i) {
      co_await env.engine->delay(rng.exponential(env.params.mean_intercall));
      const auto kind = env.params.read_fraction > 0.0 &&
                                rng.uniform() < env.params.read_fraction
                            ? objsys::InvocationKind::Read
                            : objsys::InvocationKind::Write;
      const sim::SimTime start = env.engine->now();
      co_await env.invoker->invoke(me, target, kind);
      const sim::SimTime duration = env.engine->now() - start;
      env.observer->on_call(duration);
      blk.call_time += duration;
      ++blk.calls;
    }

    env.policy->end_block(blk);
    env.observer->on_block(blk);
  }
}

OneLayerWorkload spawn_one_layer(sim::Engine& engine,
                                 objsys::ObjectRegistry& registry,
                                 migration::MigrationManager& manager,
                                 migration::MigrationPolicy& policy,
                                 objsys::Invoker& invoker,
                                 BlockObserver& observer,
                                 const WorkloadParams& params,
                                 std::uint64_t seed) {
  const std::vector<migration::MigrationPolicy*> policies(
      static_cast<std::size_t>(params.clients), &policy);
  return spawn_one_layer_mixed(engine, registry, manager, policies, invoker,
                               observer, params, seed);
}

OneLayerWorkload spawn_one_layer_mixed(
    sim::Engine& engine, objsys::ObjectRegistry& registry,
    migration::MigrationManager& manager,
    const std::vector<migration::MigrationPolicy*>& policies,
    objsys::Invoker& invoker, BlockObserver& observer,
    const WorkloadParams& params, std::uint64_t seed) {
  OMIG_REQUIRE(policies.size() == static_cast<std::size_t>(params.clients),
               "need exactly one policy per client");
  OneLayerWorkload w = build_one_layer(registry, params);
  for (int i = 0; i < params.clients; ++i) {
    ClientEnv env{&engine,   &manager, policies[static_cast<std::size_t>(i)],
                  &invoker,  &observer, params,
                  w.servers, seed};
    engine.spawn(one_layer_client(env, i));
  }
  return w;
}

}  // namespace omig::workload
