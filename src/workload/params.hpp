// Simulation workload parameters (paper Table 1).
#pragma once

#include <cstdint>

#include "objsys/ids.hpp"

namespace omig::workload {

/// The parameters of Table 1, plus the concretisations DESIGN.md documents
/// (working-set size and client/server node placement).
struct WorkloadParams {
  int nodes = 3;     ///< D — number of nodes (fixed)
  int clients = 3;   ///< C — number of clients (fixed)
  int servers1 = 3;  ///< S1 — first-layer servers (fixed)
  int servers2 = 0;  ///< S2 — second-layer servers (fixed; 0 = one layer)

  double migration_duration = 6.0;  ///< M — per-server migration duration
  double mean_calls = 8.0;          ///< N — calls per move-block (exp.)
  double mean_intercall = 1.0;      ///< t_i — gap between calls (exp.)
  double mean_interblock = 30.0;    ///< t_m — gap between blocks (exp.)

  /// Working-set size of each first-layer server (two-layer model only).
  /// Working sets overlap in a ring: WS_i = {S2_i, …, S2_(i+w−1 mod S2)} —
  /// the worst case of Section 4.4 for w >= 2.
  int working_set_size = 2;

  /// Use visit() instead of move() blocks (objects migrate back at end).
  bool use_visit = false;

  /// Create the servers as immutable ("static") objects: moves create
  /// copies instead of relocating (paper Section 1; beyond-paper bench).
  bool immutable_servers = false;

  /// Fraction of calls that are reads (0 = the paper's model, where every
  /// call may mutate; used by the Section-5-outlook replication bench).
  double read_fraction = 0.0;

  // --- fragmented workload (Section-5 outlook) -----------------------------
  /// > 0 selects the fragmented workload: the service is split into this
  /// many fragments (or one monolith of equivalent size, see below).
  int fragments = 0;
  /// Fragments per client view (ring overlap, like the Fig.-7 working sets).
  int fragment_view = 2;
  /// Baseline: keep the service as ONE object of size `fragments` instead.
  bool monolithic = false;
  /// Scan the view fragments concurrently (duration = slowest fragment)
  /// instead of sequentially (duration = sum). Fragmented workload only.
  bool parallel_scan = false;
};

/// Validates parameter ranges; throws AssertionError on violations.
void validate(const WorkloadParams& params);

/// Node placement: client `i` runs at node `i mod D`. With D = C = S1 this
/// reproduces the paper's "chance that the callee is local … is 1/C".
objsys::NodeId client_node(const WorkloadParams& params, int client_index);

/// Node placement: first-layer server `j` starts at node `j mod D`,
/// second-layer server `k` at node `(S1 + k) mod D`.
objsys::NodeId server1_node(const WorkloadParams& params, int server_index);
objsys::NodeId server2_node(const WorkloadParams& params, int server_index);

}  // namespace omig::workload
