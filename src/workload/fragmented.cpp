#include "workload/fragmented.hpp"

#include "sim/when_all.hpp"

#include <string>

#include "util/assert.hpp"

namespace omig::workload {

FragmentedWorkload build_fragmented(objsys::ObjectRegistry& registry,
                                    migration::AttachmentGraph& attachments,
                                    migration::AllianceRegistry& alliances,
                                    const WorkloadParams& params) {
  validate(params);
  OMIG_REQUIRE(params.fragments > 0, "fragmented workload needs fragments");

  FragmentedWorkload w;
  if (params.monolithic) {
    // The un-fragmented baseline: one object carrying all F fragments'
    // state — its migration costs F·M (size scales the duration).
    w.fragments.push_back(
        registry.create("monolith", objsys::NodeId{0},
                        static_cast<double>(params.fragments)));
  } else {
    for (int i = 0; i < params.fragments; ++i) {
      w.fragments.push_back(registry.create(
          "frag-" + std::to_string(i),
          objsys::NodeId{
              static_cast<std::uint32_t>(i % params.nodes)}));
    }
  }

  // Views: client i touches fragments {i, …, i+view−1 mod F} (ring
  // overlap); under the monolith every view is just the monolith.
  w.views.resize(static_cast<std::size_t>(params.clients));
  for (int c = 0; c < params.clients; ++c) {
    const objsys::AllianceId a =
        alliances.create("view-" + std::to_string(c));
    w.alliances.push_back(a);
    auto& view = w.views[static_cast<std::size_t>(c)];
    if (params.monolithic) {
      view.push_back(w.fragments[0]);
      alliances.add_member(a, w.fragments[0]);
      continue;
    }
    for (int q = 0; q < params.fragment_view; ++q) {
      const auto idx =
          static_cast<std::size_t>((c + q) % params.fragments);
      view.push_back(w.fragments[idx]);
      alliances.add_member(a, w.fragments[idx]);
      // Chain the view so a move gathers it: f_c — f_{c+1} — … in the
      // client's own cooperation context.
      if (q > 0) {
        attachments.attach(view[static_cast<std::size_t>(q - 1)],
                           view[static_cast<std::size_t>(q)], a);
      }
    }
  }
  return w;
}

sim::Task fragmented_client(FragmentedClientEnv env, int index) {
  const objsys::NodeId me = client_node(env.params, index);
  sim::Rng rng{env.seed, 100 + static_cast<std::uint64_t>(index)};
  const auto& view = env.workload.views[static_cast<std::size_t>(index)];
  const objsys::AllianceId alliance =
      env.workload.alliances[static_cast<std::size_t>(index)];

  for (;;) {
    co_await env.engine->delay(rng.exponential(env.params.mean_interblock));

    migration::MoveBlock blk = env.manager->new_block(
        me, view.front(), alliance, env.params.use_visit);
    co_await env.policy->begin_block(blk);

    const int n = rng.exponential_count(env.params.mean_calls);
    for (int i = 0; i < n; ++i) {
      co_await env.engine->delay(rng.exponential(env.params.mean_intercall));
      const sim::SimTime start = env.engine->now();
      // One logical call scans the client's whole view — sequentially by
      // default, or as a fork/join when the fragments are independent.
      if (env.params.parallel_scan) {
        std::vector<sim::Task> scans;
        scans.reserve(view.size());
        for (const objsys::ObjectId frag : view) {
          scans.push_back(env.invoker->invoke(me, frag));
        }
        co_await sim::when_all(*env.engine, std::move(scans));
      } else {
        for (const objsys::ObjectId frag : view) {
          co_await env.invoker->invoke(me, frag);
        }
      }
      const sim::SimTime duration = env.engine->now() - start;
      env.observer->on_call(duration);
      blk.call_time += duration;
      ++blk.calls;
    }

    env.policy->end_block(blk);
    env.observer->on_block(blk);
  }
}

FragmentedWorkload spawn_fragmented(sim::Engine& engine,
                                    objsys::ObjectRegistry& registry,
                                    migration::MigrationManager& manager,
                                    migration::MigrationPolicy& policy,
                                    objsys::Invoker& invoker,
                                    BlockObserver& observer,
                                    const WorkloadParams& params,
                                    std::uint64_t seed) {
  FragmentedWorkload w = build_fragmented(
      registry, manager.attachments(), manager.alliances(), params);
  for (int i = 0; i < params.clients; ++i) {
    FragmentedClientEnv env{&engine,  &manager, &policy, &invoker,
                            &observer, params,   w,       seed};
    engine.spawn(fragmented_client(env, i));
  }
  return w;
}

}  // namespace omig::workload
