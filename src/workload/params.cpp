#include "workload/params.hpp"

#include "util/assert.hpp"

namespace omig::workload {

void validate(const WorkloadParams& params) {
  OMIG_REQUIRE(params.nodes >= 1, "need at least one node");
  OMIG_REQUIRE(params.clients >= 1, "need at least one client");
  OMIG_REQUIRE(params.servers1 >= 1, "need at least one first-layer server");
  OMIG_REQUIRE(params.servers2 >= 0, "second-layer server count negative");
  OMIG_REQUIRE(params.migration_duration >= 0.0, "negative migration time");
  // "A move block is set up sensibly when N > M" (Section 4.1): warn-level
  // requirement — the paper assumes programmers obey it, and the presets do.
  OMIG_REQUIRE(params.mean_calls >= 1.0, "mean calls per block must be >= 1");
  OMIG_REQUIRE(params.mean_intercall >= 0.0, "negative inter-call time");
  OMIG_REQUIRE(params.mean_interblock >= 0.0, "negative inter-block time");
  OMIG_REQUIRE(params.read_fraction >= 0.0 && params.read_fraction <= 1.0,
               "read fraction must be in [0, 1]");
  OMIG_REQUIRE(params.fragments >= 0, "fragment count negative");
  if (params.fragments > 0) {
    OMIG_REQUIRE(params.servers2 == 0,
                 "fragmented and two-layer workloads are mutually exclusive");
    OMIG_REQUIRE(params.fragment_view >= 1 &&
                     params.fragment_view <= params.fragments,
                 "fragment view out of range");
  }
  if (params.servers2 > 0) {
    OMIG_REQUIRE(params.working_set_size >= 1 &&
                     params.working_set_size <= params.servers2,
                 "working-set size out of range");
  }
}

objsys::NodeId client_node(const WorkloadParams& params, int client_index) {
  OMIG_REQUIRE(client_index >= 0 && client_index < params.clients,
               "client index out of range");
  return objsys::NodeId{static_cast<std::uint32_t>(
      client_index % params.nodes)};
}

objsys::NodeId server1_node(const WorkloadParams& params, int server_index) {
  OMIG_REQUIRE(server_index >= 0 && server_index < params.servers1,
               "server index out of range");
  return objsys::NodeId{static_cast<std::uint32_t>(
      server_index % params.nodes)};
}

objsys::NodeId server2_node(const WorkloadParams& params, int server_index) {
  OMIG_REQUIRE(server_index >= 0 && server_index < params.servers2,
               "server index out of range");
  return objsys::NodeId{static_cast<std::uint32_t>(
      (params.servers1 + server_index) % params.nodes)};
}

}  // namespace omig::workload
