// Two-layer working-set workload (paper Figure 7, Section 4.4).
//
// First-layer servers are used directly by the clients; each first-layer
// server uses exactly the second-layer servers of its working set. All
// objects of one working set are attached together. Working sets of
// different servers partially overlap (ring overlap — the worst case): with
// unrestricted transitive attachment every migration drags the whole
// connected component; A-transitive attachment restricts it to the alliance
// the move was invoked in.
#pragma once

#include <vector>

#include "migration/alliance.hpp"
#include "migration/attachment.hpp"
#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "objsys/invocation.hpp"
#include "workload/observer.hpp"
#include "workload/params.hpp"

namespace omig::workload {

/// The built population of a two-layer experiment.
struct TwoLayerWorkload {
  std::vector<objsys::ObjectId> servers1;
  std::vector<objsys::ObjectId> servers2;
  /// working_sets[i] = the second-layer servers first-layer server i uses.
  std::vector<std::vector<objsys::ObjectId>> working_sets;
  /// alliance of first-layer server i: {S1_i} ∪ WS_i.
  std::vector<objsys::AllianceId> alliances;
};

/// Creates both server layers, the ring-overlapping working sets, one
/// alliance per first-layer server, and the attachments (labelled with the
/// alliance they were issued in).
TwoLayerWorkload build_two_layer(objsys::ObjectRegistry& registry,
                                 migration::AttachmentGraph& attachments,
                                 migration::AllianceRegistry& alliances,
                                 const WorkloadParams& params);

/// Client environment for the two-layer model.
struct TwoLayerClientEnv {
  sim::Engine* engine;
  migration::MigrationManager* manager;
  migration::MigrationPolicy* policy;
  objsys::Invoker* invoker;
  BlockObserver* observer;
  WorkloadParams params;
  TwoLayerWorkload workload;
  std::uint64_t seed;
};

/// Client `index`: each block targets a uniformly chosen first-layer server
/// in the context of that server's alliance; each call goes client → S1 and
/// then S1 → a uniformly chosen member of its working set. The measured
/// call duration spans both hops.
sim::Task two_layer_client(TwoLayerClientEnv env, int index);

/// Builds the workload and spawns all C client processes.
TwoLayerWorkload spawn_two_layer(sim::Engine& engine,
                                 objsys::ObjectRegistry& registry,
                                 migration::MigrationManager& manager,
                                 migration::MigrationPolicy& policy,
                                 objsys::Invoker& invoker,
                                 BlockObserver& observer,
                                 const WorkloadParams& params,
                                 std::uint64_t seed);

}  // namespace omig::workload
