#include "migration/attachment.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/assert.hpp"

namespace omig::migration {

bool AttachmentGraph::attach(ObjectId a, ObjectId b, AllianceId ctx) {
  OMIG_REQUIRE(a.valid() && b.valid(), "attach needs valid object ids");
  if (a == b) return false;
  // Duplicate (same pair, same context) — ignored.
  for (const Edge& e : adj_[a]) {
    if (e.peer == b && e.ctx == ctx) return false;
  }
  if (mode_ == Mode::Exclusive && (degree(a) > 0 || degree(b) > 0)) {
    // First come, first served: additional attachments are ignored
    // (Section 3.4, "exclusive attachments").
    return false;
  }
  adj_[a].push_back(Edge{b, ctx});
  adj_[b].push_back(Edge{a, ctx});
  edges_ += 2;
  return true;
}

bool AttachmentGraph::detach(ObjectId a, ObjectId b) {
  auto erase_all = [&](ObjectId from, ObjectId peer) {
    auto it = adj_.find(from);
    if (it == adj_.end()) return std::size_t{0};
    const auto before = it->second.size();
    std::erase_if(it->second, [&](const Edge& e) { return e.peer == peer; });
    return before - it->second.size();
  };
  const std::size_t removed = erase_all(a, b);
  erase_all(b, a);
  edges_ -= 2 * removed;
  return removed > 0;
}

bool AttachmentGraph::detach(ObjectId a, ObjectId b, AllianceId ctx) {
  auto erase_one = [&](ObjectId from, ObjectId peer) {
    auto it = adj_.find(from);
    if (it == adj_.end()) return false;
    auto pos = std::find_if(it->second.begin(), it->second.end(),
                            [&](const Edge& e) {
                              return e.peer == peer && e.ctx == ctx;
                            });
    if (pos == it->second.end()) return false;
    it->second.erase(pos);
    return true;
  };
  if (!erase_one(a, b)) return false;
  const bool other = erase_one(b, a);
  OMIG_ASSERT(other);
  edges_ -= 2;
  return true;
}

bool AttachmentGraph::attached(ObjectId a, ObjectId b) const {
  auto it = adj_.find(a);
  if (it == adj_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const Edge& e) { return e.peer == b; });
}

std::size_t AttachmentGraph::degree(ObjectId a) const {
  auto it = adj_.find(a);
  return it == adj_.end() ? 0 : it->second.size();
}

std::vector<ObjectId> AttachmentGraph::closure(ObjectId start) const {
  return bfs(start, /*restrict_ctx=*/false, AllianceId::invalid());
}

std::vector<ObjectId> AttachmentGraph::closure_in(ObjectId start,
                                                  AllianceId ctx) const {
  return bfs(start, /*restrict_ctx=*/true, ctx);
}

std::vector<ObjectId> AttachmentGraph::bfs(ObjectId start, bool restrict_ctx,
                                           AllianceId ctx) const {
  std::vector<ObjectId> out;
  std::unordered_set<ObjectId> seen;
  std::deque<ObjectId> frontier;
  seen.insert(start);
  frontier.push_back(start);
  while (!frontier.empty()) {
    const ObjectId cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    auto it = adj_.find(cur);
    if (it == adj_.end()) continue;
    for (const Edge& e : it->second) {
      if (restrict_ctx && e.ctx != ctx) continue;
      if (seen.insert(e.peer).second) frontier.push_back(e.peer);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace omig::migration
