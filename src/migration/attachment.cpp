#include "migration/attachment.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::migration {

bool AttachmentGraph::attach(ObjectId a, ObjectId b, AllianceId ctx) {
  OMIG_REQUIRE(a.valid() && b.valid(), "attach needs valid object ids");
  if (a == b) return false;
  // Duplicate (same pair, same context) — ignored.
  for (const Edge& e : adj_[a]) {
    if (e.peer == b && e.ctx == ctx) return false;
  }
  if (mode_ == Mode::Exclusive && (degree(a) > 0 || degree(b) > 0)) {
    // First come, first served: additional attachments are ignored
    // (Section 3.4, "exclusive attachments").
    return false;
  }
  adj_[a].push_back(Edge{b, ctx});
  adj_[b].push_back(Edge{a, ctx});
  edges_ += 2;
  return true;
}

bool AttachmentGraph::detach(ObjectId a, ObjectId b) {
  auto erase_all = [&](ObjectId from, ObjectId peer) {
    std::vector<Edge>* edges = adj_.find(from);
    if (edges == nullptr) return std::size_t{0};
    const auto before = edges->size();
    std::erase_if(*edges, [&](const Edge& e) { return e.peer == peer; });
    return before - edges->size();
  };
  const std::size_t removed = erase_all(a, b);
  erase_all(b, a);
  edges_ -= 2 * removed;
  return removed > 0;
}

bool AttachmentGraph::detach(ObjectId a, ObjectId b, AllianceId ctx) {
  auto erase_one = [&](ObjectId from, ObjectId peer) {
    std::vector<Edge>* edges = adj_.find(from);
    if (edges == nullptr) return false;
    auto pos = std::find_if(edges->begin(), edges->end(),
                            [&](const Edge& e) {
                              return e.peer == peer && e.ctx == ctx;
                            });
    if (pos == edges->end()) return false;
    edges->erase(pos);
    return true;
  };
  if (!erase_one(a, b)) return false;
  const bool other = erase_one(b, a);
  OMIG_ASSERT(other);
  edges_ -= 2;
  return true;
}

bool AttachmentGraph::attached(ObjectId a, ObjectId b) const {
  const std::vector<Edge>* edges = adj_.find(a);
  if (edges == nullptr) return false;
  return std::any_of(edges->begin(), edges->end(),
                     [&](const Edge& e) { return e.peer == b; });
}

std::size_t AttachmentGraph::degree(ObjectId a) const {
  const std::vector<Edge>* edges = adj_.find(a);
  return edges == nullptr ? 0 : edges->size();
}

std::vector<ObjectId> AttachmentGraph::closure(ObjectId start) const {
  return bfs(start, /*restrict_ctx=*/false, AllianceId::invalid());
}

std::vector<ObjectId> AttachmentGraph::closure_in(ObjectId start,
                                                  AllianceId ctx) const {
  return bfs(start, /*restrict_ctx=*/true, ctx);
}

std::vector<ObjectId> AttachmentGraph::bfs(ObjectId start, bool restrict_ctx,
                                           AllianceId ctx) const {
  const auto seen = [&](ObjectId o) {
    if (seen_stamp_.size() <= o.value()) seen_stamp_.resize(o.value() + 1, 0);
    if (seen_stamp_[o.value()] == epoch_) return true;
    seen_stamp_[o.value()] = epoch_;
    return false;
  };
  if (++epoch_ == 0) {
    // Stamp counter wrapped: stale stamps could alias the new epoch.
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    epoch_ = 1;
  }
  // frontier_ doubles as the output: visited objects are never removed,
  // only a read cursor advances, so at the end it IS the closure.
  frontier_.clear();
  seen(start);
  frontier_.push_back(start);
  for (std::size_t next = 0; next < frontier_.size(); ++next) {
    const std::vector<Edge>* edges = adj_.find(frontier_[next]);
    if (edges == nullptr) continue;
    for (const Edge& e : *edges) {
      if (restrict_ctx && e.ctx != ctx) continue;
      if (!seen(e.peer)) frontier_.push_back(e.peer);
    }
  }
  std::vector<ObjectId> out(frontier_.begin(), frontier_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace omig::migration
