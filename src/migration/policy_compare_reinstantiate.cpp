#include "migration/policy_impl.hpp"

namespace omig::migration {

void CompareReinstantiatePolicy::end_block(MoveBlock& blk) {
  CompareNodesPolicy::end_block(blk);
  // "Objects may not only be migrated on move-requests but also on
  // end-requests, if an end-request leads to a situation that some other
  // node holds a clear majority on open move-requests." The migration runs
  // in the background (no block is waiting on it); its cost goes to the
  // background sink so the metric still accounts for it.
  auto& reg = mgr_->registry();
  if (reg.descriptor(blk.target).immutable) return;
  const objsys::NodeId best = mgr_->strict_majority_node(blk.target);
  if (best.valid() && best != reg.location(blk.target) &&
      !reg.in_transit(blk.target)) {
    auto cluster = mgr_->migration_cluster(blk.target, blk.alliance);
    mgr_->engine().spawn(mgr_->transfer(std::move(cluster), best, nullptr));
  }
}

}  // namespace omig::migration
