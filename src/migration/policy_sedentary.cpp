#include "migration/policy_impl.hpp"

namespace omig::migration {

sim::Task SedentaryPolicy::begin_block(MoveBlock& blk) {
  // "Without migration": no request is sent, nothing moves, nothing is
  // charged. The block still brackets the N invocations so the metrics are
  // comparable across policies.
  mgr_->trace_event(trace::EventKind::BlockBegin, blk.target, blk.origin,
                    blk.id);
  co_return;
}

void SedentaryPolicy::end_block(MoveBlock& blk) {
  mgr_->trace_event(trace::EventKind::BlockEnd, blk.target, blk.origin,
                    blk.id);
}

}  // namespace omig::migration
