#include "migration/policy_impl.hpp"

namespace omig::migration {

sim::Task ConventionalPolicy::begin_block(MoveBlock& blk) {
  // The move request travels to the current location of the target
  // (Figure 3); the migration is then executed unconditionally — this is
  // exactly the behaviour whose worst case costs 2M + (2N+2)·C under
  // concurrency (Section 3.2).
  mgr_->trace_event(trace::EventKind::BlockBegin, blk.target, blk.origin,
                    blk.id);
  co_await mgr_->control_message(blk.origin, blk.target, &blk);
  auto cluster = mgr_->migration_cluster(blk.target, blk.alliance);
  co_await mgr_->transfer(std::move(cluster), blk.origin, &blk);
}

void ConventionalPolicy::end_block(MoveBlock& blk) {
  // move(): the end-request carries no obligation. visit(): the objects
  // migrate back to where they came from.
  mgr_->trace_event(trace::EventKind::BlockEnd, blk.target, blk.origin,
                    blk.id);
  if (blk.visit) migrate_back(blk);
}

}  // namespace omig::migration
