// The paper's linguistic primitives, as one user-facing facade.
//
// Section 2.2/2.3 lists the conventional support for mobile objects:
// fix()/unfix()/refix(), migrate(O, target), location_of()/is_resident(),
// attach()/detach(), and the move()/visit()/end() block primitives. This
// facade binds them to a MigrationManager + MigrationPolicy pair so that
// application code (the examples, and the workload generators) reads like
// the paper's GOM snippets.
#pragma once

#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "objsys/invocation.hpp"

namespace omig::migration {

class Primitives {
public:
  Primitives(MigrationManager& mgr, MigrationPolicy& policy,
             objsys::Invoker& invoker)
      : mgr_{&mgr}, policy_{&policy}, invoker_{&invoker} {}

  // --- fixing objects ------------------------------------------------------
  void fix(ObjectId obj) {
    mgr_->registry().fix(obj);
    mgr_->trace_event(trace::EventKind::Fix, obj);
  }
  void unfix(ObjectId obj) {
    mgr_->registry().unfix(obj);
    mgr_->trace_event(trace::EventKind::Unfix, obj);
  }
  void refix(ObjectId obj) { mgr_->registry().refix(obj); }
  [[nodiscard]] bool is_fixed(ObjectId obj) const {
    return mgr_->registry().is_fixed(obj);
  }

  // --- interrogating locations ----------------------------------------------
  [[nodiscard]] objsys::NodeId location_of(ObjectId obj) const {
    return mgr_->registry().location(obj);
  }
  [[nodiscard]] bool is_resident(ObjectId obj, objsys::NodeId node) const {
    return mgr_->registry().is_resident(obj, node);
  }

  // --- explicit migration ----------------------------------------------------
  /// migrate(O, node): moves O — and its transitive attachment cluster, which
  /// is exactly the underestimation hazard of Section 2.4 — to `node`.
  sim::Task migrate(ObjectId obj, objsys::NodeId node,
                    AllianceId ctx = AllianceId::invalid()) {
    return mgr_->transfer(mgr_->migration_cluster(obj, ctx), node, nullptr);
  }

  /// migrate(O, O'): collocates O with O' (the "target names another object"
  /// form of the primitive).
  sim::Task migrate_to_object(ObjectId obj, ObjectId with,
                              AllianceId ctx = AllianceId::invalid()) {
    return migrate(obj, location_of(with), ctx);
  }

  // --- keeping objects together -----------------------------------------------
  bool attach(ObjectId a, ObjectId b,
              AllianceId ctx = AllianceId::invalid()) {
    return mgr_->attachments().attach(a, b, ctx);
  }
  bool detach(ObjectId a, ObjectId b) {
    return mgr_->attachments().detach(a, b);
  }

  // --- move / visit / end blocks ------------------------------------------------
  /// Opens a move() block context for the client at `who` on object `what`.
  [[nodiscard]] MoveBlock move(objsys::NodeId who, ObjectId what,
                               AllianceId ctx = AllianceId::invalid()) {
    return mgr_->new_block(who, what, ctx, /*visit=*/false);
  }

  /// Opens a visit() block: like move(), but the objects migrate back when
  /// the block ends.
  [[nodiscard]] MoveBlock visit(objsys::NodeId who, ObjectId what,
                                AllianceId ctx = AllianceId::invalid()) {
    return mgr_->new_block(who, what, ctx, /*visit=*/true);
  }

  /// Executes the block-opening migration request under the active policy.
  sim::Task begin(MoveBlock& blk) { return policy_->begin_block(blk); }

  /// Issues the end-request that closes the block.
  void end(MoveBlock& blk) { policy_->end_block(blk); }

  // --- invocation --------------------------------------------------------------
  sim::Task call(objsys::NodeId from, ObjectId obj) {
    return invoker_->invoke(from, obj);
  }
  sim::Task call_from_object(ObjectId from, ObjectId obj) {
    return invoker_->invoke_from_object(from, obj);
  }

  // --- call-by-move / call-by-visit (paper Figure 1) -----------------------------
  /// Invokes `callee` with `param` passed by move: the parameter object is
  /// migrated (policy-interpreted!) to the callee's node for the duration
  /// of the call — "declare assign: visit job, move schedule". The implicit
  /// move-block spans exactly the invocation.
  sim::Task call_by_move(objsys::NodeId caller, ObjectId callee,
                         ObjectId param) {
    return call_with_param(caller, callee, param, /*visit=*/false);
  }

  /// Like call_by_move, but the parameter migrates back to where it came
  /// from once the call completes ("to go back after the operation
  /// completed in the visit case").
  sim::Task call_by_visit(objsys::NodeId caller, ObjectId callee,
                          ObjectId param) {
    return call_with_param(caller, callee, param, /*visit=*/true);
  }

  [[nodiscard]] MigrationManager& manager() { return *mgr_; }
  [[nodiscard]] MigrationPolicy& policy() { return *policy_; }

private:
  sim::Task call_with_param(objsys::NodeId caller, ObjectId callee,
                            ObjectId param, bool visit);

  MigrationManager* mgr_;
  MigrationPolicy* policy_;
  objsys::Invoker* invoker_;
};

}  // namespace omig::migration
