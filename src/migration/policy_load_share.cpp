#include "migration/policy_impl.hpp"

namespace omig::migration {

sim::Task LoadSharePolicy::begin_block(MoveBlock& blk) {
  // The load-sharing component interprets move() against its own goal:
  // "by moving objects around the system, one can take advantage of
  // lightly used computers" (Section 2.2). It relocates the target — and
  // everything attached — to the least-loaded node, which is generally
  // *not* where the caller lives. In a monolithic system this might be a
  // deliberate trade; in a non-monolithic one it silently fights every
  // component that moved the object for communication performance.
  mgr_->trace_event(trace::EventKind::BlockBegin, blk.target, blk.origin,
                    blk.id);
  co_await mgr_->control_message(blk.origin, blk.target, &blk);
  const objsys::NodeId dest = mgr_->registry().least_loaded_node();
  auto cluster = mgr_->migration_cluster(blk.target, blk.alliance);
  co_await mgr_->transfer(std::move(cluster), dest, &blk);
}

void LoadSharePolicy::end_block(MoveBlock& blk) {
  mgr_->trace_event(trace::EventKind::BlockEnd, blk.target, blk.origin,
                    blk.id);
  if (blk.visit) migrate_back(blk);
}

}  // namespace omig::migration
