// Migration policy interface.
//
// A policy interprets the move()/end() primitives of a move-block. The
// paper's continuum (Section 3.3): conventional migration is the aggressive
// extreme, transient placement the conservative one, and the dynamic
// policies (comparing the nodes, comparing + reinstantiation) sit between
// them, trading bookkeeping for (it turns out marginal) gains.
#pragma once

#include <memory>
#include <string_view>

#include "migration/block.hpp"
#include "migration/manager.hpp"
#include "sim/task.hpp"

namespace omig::migration {

enum class PolicyKind {
  Sedentary,             ///< baseline: no migration at all
  Conventional,          ///< move() always migrates (call-by-move semantics)
  Placement,             ///< transient placement (Section 3.2)
  CompareNodes,          ///< dynamic: most open move-requests wins (4.3)
  CompareReinstantiate,  ///< dynamic: additionally migrates on end-requests
  LoadShare,             ///< beyond-paper: pursues Section 2.2's load-sharing
                         ///< goal — moves objects to lightly used nodes,
                         ///< regardless of who is calling them
  Adaptive,              ///< beyond-paper: migrates toward the EMA-dominant
                         ///< caller node, gated by a hysteresis band
                         ///< (docs/policies.md)
  AdaptiveLoad,          ///< Adaptive plus a per-node load veto: an
                         ///< overloaded dominant node does not attract moves
};

[[nodiscard]] std::string_view to_string(PolicyKind kind);

/// Interprets move-block begin/end for one experiment.
class MigrationPolicy {
public:
  explicit MigrationPolicy(MigrationManager& mgr) : mgr_{&mgr} {}
  virtual ~MigrationPolicy() = default;
  MigrationPolicy(const MigrationPolicy&) = delete;
  MigrationPolicy& operator=(const MigrationPolicy&) = delete;

  [[nodiscard]] virtual PolicyKind kind() const = 0;

  /// Processes the move()/visit() that opens `blk`: sends the request,
  /// decides at the object, and (maybe) migrates. Completes when the client
  /// may start invoking.
  virtual sim::Task begin_block(MoveBlock& blk) = 0;

  /// Processes the end-request that closes `blk`. Local at the caller for
  /// the simple policies; may trigger background migrations for the
  /// reinstantiation policy and the migrate-back of visit().
  virtual void end_block(MoveBlock& blk) = 0;

protected:
  /// Migrates `blk.moved` back to where the objects came from (visit()).
  void migrate_back(MoveBlock& blk);

  MigrationManager* mgr_;
};

/// Factory covering every PolicyKind.
std::unique_ptr<MigrationPolicy> make_policy(PolicyKind kind,
                                             MigrationManager& mgr);

}  // namespace omig::migration
