#include "migration/policy_impl.hpp"

namespace omig::migration {

sim::Task CompareNodesPolicy::begin_block(MoveBlock& blk) {
  mgr_->trace_event(trace::EventKind::BlockBegin, blk.target, blk.origin,
                    blk.id);
  co_await mgr_->control_message(blk.origin, blk.target, &blk);

  auto& reg = mgr_->registry();

  if (reg.descriptor(blk.target).immutable) {
    // Copies commute; no bookkeeping needed for static objects.
    auto copy_cluster = mgr_->migration_cluster(blk.target, blk.alliance);
    co_await mgr_->transfer(std::move(copy_cluster), blk.origin, &blk);
    blk.counted = false;
    co_return;
  }
  // The run-time system at the object records the move-request and the node
  // it came from (Section 4.3). The bookkeeping itself is free, as in the
  // paper: "the necessary overhead to collect the dynamic information has
  // been completely neglected".
  mgr_->note_move(blk.target, blk.origin);
  blk.counted = true;

  if (reg.is_fixed(blk.target) || !reg.descriptor(blk.target).mobile) {
    mgr_->trace_event(trace::EventKind::MoveRefused, blk.target, blk.origin,
                      blk.id);
    co_return;  // as with placement: only the request message is charged
  }

  const objsys::NodeId host = reg.location(blk.target);
  if (host == blk.origin) co_return;  // already collocated

  // Keep the object at the node with the most open move-requests: migrate
  // only if the requester's node now holds strictly more than the host.
  if (mgr_->open_moves(blk.target, blk.origin) >
      mgr_->open_moves(blk.target, host)) {
    auto cluster = mgr_->migration_cluster(blk.target, blk.alliance);
    co_await mgr_->transfer(std::move(cluster), blk.origin, &blk);
  } else {
    mgr_->trace_event(trace::EventKind::MoveRefused, blk.target, blk.origin,
                      blk.id);
  }
  // Otherwise: "a conflicting move-request has initially no effect on the
  // location" — the caller's calls are forwarded remotely; no dedicated
  // indication message is charged (same accounting as placement).
}

void CompareNodesPolicy::end_block(MoveBlock& blk) {
  mgr_->trace_event(trace::EventKind::BlockEnd, blk.target, blk.origin,
                    blk.id);
  if (!blk.counted) return;  // immutable target: no open-move bookkeeping
  mgr_->note_end(blk.target, blk.origin);
  if (blk.visit) migrate_back(blk);
}

}  // namespace omig::migration
