// Move-block context.
//
// A move-block (paper Figure 2) is the dynamic extent of a move()/visit():
// it starts with a migration request, covers N invocations of the target,
// and finishes with an end-request that tells the run-time system the
// collocation is no longer needed. The block also carries the metric
// bookkeeping: the evaluation metric is "mean duration of an invocation
// plus the migration cost evenly distributed to the invocations belonging
// to that migration" (Section 4.2.1).
#pragma once

#include <vector>

#include "objsys/ids.hpp"
#include "sim/time.hpp"

namespace omig::migration {

using objsys::AllianceId;
using objsys::BlockId;
using objsys::NodeId;
using objsys::ObjectId;

/// One dynamic move()/visit() block instance.
struct MoveBlock {
  BlockId id;
  NodeId origin;      ///< the requesting client's node (migration target)
  ObjectId target;    ///< the object named in the move()/visit()
  AllianceId alliance = AllianceId::invalid();  ///< cooperation context
  bool visit = false;  ///< visit(): migrate back at end-request

  /// Objects this block actually migrated (and, under placement, locked).
  std::vector<ObjectId> moved;
  /// Where each moved object came from (parallel to `moved`; for visit()).
  std::vector<NodeId> origins_of_moved;
  /// Objects this block holds placement locks on (superset of `moved`:
  /// cluster members that were already local are locked but not transferred).
  std::vector<ObjectId> locked;
  /// True if the block holds placement locks (successful place-policy move).
  bool lock_held = false;
  /// True if the dynamic policies registered this block in the per-node
  /// open-move counts (false for immutable targets, which are copied).
  bool counted = false;

  // --- metric bookkeeping -------------------------------------------------
  int calls = 0;                 ///< invocations completed inside the block
  sim::SimTime call_time = 0.0;  ///< summed durations of those invocations
  sim::SimTime migration_cost = 0.0;  ///< migration + control-message time

  [[nodiscard]] sim::SimTime total_cost() const {
    return call_time + migration_cost;
  }
};

}  // namespace omig::migration
