// Adaptive placement policies (docs/policies.md).
//
// The paper's dynamic policies count open move-requests; these instead
// consume the access-locality telemetry the obs layer made nearly free: a
// per-object EMA of the caller-node distribution (objsys::LocalityTracker),
// fed by every invocation. A move() migrates the target toward the
// EMA-dominant node only when that node's share of the recent accesses
// leads the current host's by a hysteresis band — re-judging the paper's
// claim 3 with bookkeeping the 1995 system could not afford to collect.
#include <algorithm>

#include "migration/policy_impl.hpp"
#include "util/assert.hpp"

namespace omig::migration {

sim::Task AdaptivePlacementPolicy::begin_block(MoveBlock& blk) {
  mgr_->trace_event(trace::EventKind::BlockBegin, blk.target, blk.origin,
                    blk.id);
  co_await mgr_->control_message(blk.origin, blk.target, &blk);

  auto& reg = mgr_->registry();

  if (reg.descriptor(blk.target).immutable) {
    // Copies commute; no placement decision needed for static objects.
    auto copy_cluster = mgr_->migration_cluster(blk.target, blk.alliance);
    co_await mgr_->transfer(std::move(copy_cluster), blk.origin, &blk);
    blk.counted = false;
    co_return;
  }
  if (reg.is_fixed(blk.target) || !reg.descriptor(blk.target).mobile) {
    mgr_->trace_event(trace::EventKind::MoveRefused, blk.target, blk.origin,
                      blk.id);
    co_return;  // only the request message is charged, as with placement
  }

  objsys::LocalityTracker* tracker = mgr_->locality();
  OMIG_REQUIRE(tracker != nullptr,
               "adaptive policies need a LocalityTracker attached to the "
               "MigrationManager");
  const objsys::NodeId host = reg.location(blk.target);
  const objsys::LocalityEstimate est = tracker->estimate(blk.target, host);
  const ManagerOptions& opts = mgr_->options();
  PolicyCounters& counters = mgr_->policy_counters();

  // No recorded accesses, or the dominant caller already hosts the object:
  // nothing to decide — the caller's calls are forwarded remotely (or are
  // local already), exactly the placement fallback.
  if (!est.dominant.valid() || est.dominant == host) {
    if (host != blk.origin) {
      mgr_->trace_event(trace::EventKind::MoveRefused, blk.target,
                        blk.origin, blk.id);
    }
    co_return;
  }

  // Hysteresis: migrate only once the dominant node's EMA share leads the
  // host's by the configured band, and the EMA has seen enough accesses
  // that one early caller cannot drag the object around.
  if (est.weight < opts.adaptive_min_weight ||
      est.share - est.host_share < opts.hysteresis_band) {
    ++counters.suppressed_hysteresis;
    if (host != blk.origin) {
      mgr_->trace_event(trace::EventKind::MoveRefused, blk.target,
                        blk.origin, blk.id);
    }
    co_return;
  }

  auto cluster = mgr_->migration_cluster(blk.target, blk.alliance);
  if (load_vetoes(est.dominant, cluster.size())) {
    ++counters.suppressed_load;
    if (host != blk.origin) {
      mgr_->trace_event(trace::EventKind::MoveRefused, blk.target,
                        blk.origin, blk.id);
    }
    co_return;
  }

  note_migration(blk.target, host, est.dominant);
  ++counters.migrations_triggered;
  co_await mgr_->transfer(std::move(cluster), est.dominant, &blk);
}

void AdaptivePlacementPolicy::end_block(MoveBlock& blk) {
  mgr_->trace_event(trace::EventKind::BlockEnd, blk.target, blk.origin,
                    blk.id);
  if (blk.visit) migrate_back(blk);
}

bool AdaptivePlacementPolicy::load_vetoes(objsys::NodeId /*dest*/,
                                          std::size_t /*cluster_size*/) const {
  return false;  // the plain adaptive policy ignores load
}

void AdaptivePlacementPolicy::note_migration(ObjectId obj, objsys::NodeId from,
                                             objsys::NodeId to) {
  auto& last = last_move_[obj];
  if (last.first.valid() && last.first == to && last.second == from) {
    ++mgr_->policy_counters().pingpong_reversals;
  }
  last = {from, to};
}

bool AdaptiveLoadPolicy::load_vetoes(objsys::NodeId dest,
                                     std::size_t cluster_size) const {
  const objsys::ObjectRegistry& reg = mgr_->registry();
  // Mean hosted objects per node, floored at 1 so sparse populations
  // (fewer objects than nodes) can still co-locate an object with its
  // dominant caller instead of vetoing every move.
  const double mean =
      std::max(1.0, static_cast<double>(reg.object_count()) /
                        static_cast<double>(reg.node_count()));
  const double cap = mgr_->options().load_factor * mean;
  const double would_host =
      static_cast<double>(reg.objects_at(dest) + cluster_size);
  return would_host > cap;
}

}  // namespace omig::migration
