// Attachment graph (Section 2.2 / 3.4 of the paper).
//
// attach(a, b) asks the system to keep a and b together: whenever one of
// them migrates, the other follows. Conventionally attachment is transitive
// — the *whole connected component* moves. The paper shows this is the
// root of the non-monolithic degradation and proposes two restrictions:
//
//  * A-transitive attachment: edges carry the alliance (cooperation context)
//    they were issued in; the closure followed by a migration is restricted
//    to the edges of the alliance the move was invoked in.
//  * Exclusive attachment: an object may participate in at most one
//    attachment; later attach() calls are ignored (first come, first served).
#pragma once

#include <cstdint>
#include <vector>

#include "objsys/ids.hpp"
#include "util/dense_table.hpp"

namespace omig::migration {

using objsys::AllianceId;
using objsys::ObjectId;

/// Undirected multigraph of attachments; each edge is labelled with the
/// alliance context it was issued in (invalid() = no context).
class AttachmentGraph {
public:
  enum class Mode {
    Standard,   ///< any number of attachments per object
    Exclusive,  ///< at most one attachment per object; extras ignored
  };

  explicit AttachmentGraph(Mode mode = Mode::Standard) : mode_{mode} {}

  [[nodiscard]] Mode mode() const { return mode_; }

  /// Attaches a and b in context `ctx`. Returns false (and does nothing) if
  /// the request is ignored: self-attachment, duplicate (same pair and
  /// context), or an exclusivity violation.
  bool attach(ObjectId a, ObjectId b, AllianceId ctx = AllianceId::invalid());

  /// Removes every a–b edge (all contexts). Returns false if none existed.
  bool detach(ObjectId a, ObjectId b);

  /// Removes the a–b edge in exactly context `ctx`.
  bool detach(ObjectId a, ObjectId b, AllianceId ctx);

  /// True if any a–b edge exists (any context).
  [[nodiscard]] bool attached(ObjectId a, ObjectId b) const;

  /// Number of attachment edges incident to `a`.
  [[nodiscard]] std::size_t degree(ObjectId a) const;

  /// Total number of (undirected) edges.
  [[nodiscard]] std::size_t edge_count() const { return edges_ / 2; }

  /// Unrestricted transitive closure: every object reachable from `start`
  /// over any attachment edge, `start` included. Sorted by id.
  [[nodiscard]] std::vector<ObjectId> closure(ObjectId start) const;

  /// A-transitive closure: only edges labelled with `ctx` are followed
  /// (Section 3.4: "attachments are A-transitive"). Sorted by id.
  [[nodiscard]] std::vector<ObjectId> closure_in(ObjectId start,
                                                 AllianceId ctx) const;

private:
  struct Edge {
    ObjectId peer;
    AllianceId ctx;
  };

  [[nodiscard]] std::vector<ObjectId> bfs(ObjectId start, bool restrict_ctx,
                                          AllianceId ctx) const;

  Mode mode_;
  /// Adjacency lists indexed by object id (ids are registry-contiguous).
  util::DenseTable<ObjectId, std::vector<Edge>> adj_;
  std::size_t edges_ = 0;  ///< directed half-edge count

  // BFS scratch, reused across closure() calls: `seen_stamp_[id] ==
  // epoch_` marks a visited object, so starting a new traversal is one
  // counter bump instead of clearing (or rebuilding) a hash set. Purely a
  // cache — mutable so the const closure queries can use it.
  mutable std::vector<std::uint32_t> seen_stamp_;
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<ObjectId> frontier_;
};

}  // namespace omig::migration
