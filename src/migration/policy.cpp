#include "migration/policy.hpp"

#include "migration/policy_impl.hpp"
#include "util/assert.hpp"

namespace omig::migration {

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Sedentary:
      return "sedentary";
    case PolicyKind::Conventional:
      return "conventional";
    case PolicyKind::Placement:
      return "placement";
    case PolicyKind::CompareNodes:
      return "compare-nodes";
    case PolicyKind::CompareReinstantiate:
      return "compare-reinstantiate";
    case PolicyKind::LoadShare:
      return "load-share";
    case PolicyKind::Adaptive:
      return "adaptive";
    case PolicyKind::AdaptiveLoad:
      return "adaptive-load";
  }
  return "unknown";
}

void MigrationPolicy::migrate_back(MoveBlock& blk) {
  // Group moved objects by the node they came from and send each group home
  // as one background transfer (cost attributed to the background sink:
  // the block is over when the visit returns).
  OMIG_ASSERT(blk.moved.size() == blk.origins_of_moved.size());
  for (std::size_t i = 0; i < blk.moved.size(); ++i) {
    std::vector<ObjectId> group;
    const objsys::NodeId from = blk.origins_of_moved[i];
    if (!from.valid()) continue;
    for (std::size_t j = i; j < blk.moved.size(); ++j) {
      if (blk.origins_of_moved[j] == from) {
        group.push_back(blk.moved[j]);
        blk.origins_of_moved[j] = objsys::NodeId::invalid();  // consumed
      }
    }
    mgr_->engine().spawn(mgr_->transfer(std::move(group), from, nullptr));
  }
}

std::unique_ptr<MigrationPolicy> make_policy(PolicyKind kind,
                                             MigrationManager& mgr) {
  switch (kind) {
    case PolicyKind::Sedentary:
      return std::make_unique<SedentaryPolicy>(mgr);
    case PolicyKind::Conventional:
      return std::make_unique<ConventionalPolicy>(mgr);
    case PolicyKind::Placement:
      return std::make_unique<PlacementPolicy>(mgr);
    case PolicyKind::CompareNodes:
      return std::make_unique<CompareNodesPolicy>(mgr);
    case PolicyKind::CompareReinstantiate:
      return std::make_unique<CompareReinstantiatePolicy>(mgr);
    case PolicyKind::LoadShare:
      return std::make_unique<LoadSharePolicy>(mgr);
    case PolicyKind::Adaptive:
      return std::make_unique<AdaptivePlacementPolicy>(mgr);
    case PolicyKind::AdaptiveLoad:
      return std::make_unique<AdaptiveLoadPolicy>(mgr);
  }
  OMIG_REQUIRE(false, "unknown policy kind");
  return nullptr;
}

}  // namespace omig::migration
