#include "migration/primitives.hpp"

namespace omig::migration {

sim::Task Primitives::call_with_param(objsys::NodeId caller, ObjectId callee,
                                      ObjectId param, bool visit) {
  // Figure 1's call-by-move/call-by-visit: the parameter object is moved
  // to the *callee* for the duration of the invocation. The move is an
  // implicit move-block whose validity is exactly the call ("the
  // programmer tells the system that the cost to migrate the named object
  // is less than the cost to use the object remotely during the validity
  // of the move primitive", Section 2.3) — and it is interpreted by the
  // active policy, so a conflicting move simply leaves the parameter
  // remote.
  const objsys::NodeId callee_node = mgr_->registry().location(callee);
  MoveBlock blk = mgr_->new_block(callee_node, param,
                                  objsys::AllianceId::invalid(), visit);
  co_await policy_->begin_block(blk);
  co_await invoker_->invoke(caller, callee);
  policy_->end_block(blk);
}

}  // namespace omig::migration
