#include "migration/manager.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::migration {

namespace {
/// Bound on retransmissions per control-message leg, so a plan with drop
/// probability 1.0 cannot hang the simulation.
constexpr int kMaxLegRetries = 64;
}  // namespace

MigrationManager::MigrationManager(sim::Engine& engine,
                                   ObjectRegistry& registry,
                                   const net::LatencyModel& latency,
                                   sim::Rng& rng,
                                   AttachmentGraph& attachments,
                                   AllianceRegistry& alliances,
                                   ManagerOptions options)
    : engine_{&engine}, registry_{&registry}, latency_{&latency}, rng_{&rng},
      attachments_{&attachments}, alliances_{&alliances}, options_{options} {
  OMIG_REQUIRE(options.migration_duration >= 0.0,
               "migration duration must be non-negative");
}

MoveBlock MigrationManager::new_block(objsys::NodeId origin, ObjectId target,
                                      AllianceId alliance, bool visit) {
  MoveBlock blk;
  blk.id = objsys::BlockId{next_block_++};
  blk.origin = origin;
  blk.target = target;
  blk.alliance = alliance;
  blk.visit = visit;
  return blk;
}

std::vector<ObjectId> MigrationManager::migration_cluster(
    ObjectId obj, AllianceId alliance) const {
  if (options_.transitivity == AttachTransitivity::ATransitive &&
      alliance.valid()) {
    return attachments_->closure_in(obj, alliance);
  }
  return attachments_->closure(obj);
}

void MigrationManager::trace_event(trace::EventKind kind, ObjectId object,
                                   objsys::NodeId node,
                                   objsys::BlockId block) {
  if (trace_ == nullptr) return;
  trace_->record(trace::Event{engine_->now(), kind, object, node, block});
}

sim::SimTime MigrationManager::message_cost(std::size_t from,
                                            std::size_t to) {
  sim::SimTime cost = latency_->sample(*rng_, from, to);
  if (fault_ == nullptr) return cost;
  for (int attempt = 0; attempt < kMaxLegRetries; ++attempt) {
    const fault::Decision dec = fault_->on_message(from, to);
    if (!dec.drop) return cost + dec.delay;
    // Lost: the sender waits out its timeout, then retransmits.
    cost += fault_->plan().retry_timeout;
    fault_->counters().retries.fetch_add(1, std::memory_order_relaxed);
    cost += latency_->sample(*rng_, from, to);
  }
  return cost;
}

sim::Task MigrationManager::control_message(objsys::NodeId from,
                                            ObjectId about, MoveBlock* blk) {
  ++control_;
  trace_event(trace::EventKind::MoveRequest, about, from,
              blk ? blk->id : objsys::BlockId::invalid());
  const objsys::NodeId to = registry_->location(about);
  const sim::SimTime d = message_cost(from.value(), to.value());
  charge(blk, d);
  co_await engine_->delay(d);
}

sim::Task MigrationManager::control_reply(ObjectId about, objsys::NodeId to,
                                          MoveBlock* blk) {
  ++control_;
  const objsys::NodeId from = registry_->location(about);
  const sim::SimTime d = message_cost(from.value(), to.value());
  charge(blk, d);
  co_await engine_->delay(d);
}

sim::Task MigrationManager::transfer(std::vector<ObjectId> objs,
                                     objsys::NodeId dest, MoveBlock* blk) {
  // Wait until no member is in transit under someone else's migration.
  for (;;) {
    ObjectId busy = ObjectId::invalid();
    for (ObjectId o : objs) {
      if (registry_->in_transit(o)) {
        busy = o;
        break;
      }
    }
    if (!busy.valid()) break;
    co_await registry_->transit_gate(busy).wait();
  }

  // Partition members: mutable objects transit; immutable ("static")
  // objects are copied instead — the original stays operational, callers
  // never block, and conflicting moves commute (paper Section 1).
  std::vector<ObjectId> moving;
  std::vector<ObjectId> copying;
  moving.reserve(objs.size());
  for (ObjectId o : objs) {
    const auto& desc = registry_->descriptor(o);
    if (desc.immutable) {
      if (desc.mobile && !registry_->is_fixed(o) &&
          !registry_->has_replica(o, dest)) {
        copying.push_back(o);
      }
    } else if (registry_->is_movable(o) && registry_->location(o) != dest) {
      moving.push_back(o);
    }
  }
  if (moving.empty() && copying.empty()) co_return;

  if (health_ != nullptr) {
    // A crashed destination cannot receive objects: the transfer stalls
    // until it restarts, and the stall is the block's problem. A crashed
    // *source* does not stall anything — the member's state is pulled from
    // its directory checkpoint instead (degraded-mode recovery, see
    // docs/fault_model.md), which costs the same transfer time.
    const sim::SimTime wait_start = engine_->now();
    while (!health_->up(dest.value())) {
      co_await health_->wait_up(dest.value());
    }
    charge(blk, engine_->now() - wait_start);
    if (fault_ != nullptr) {
      for (ObjectId o : moving) {
        if (!health_->up(registry_->location(o).value())) {
          fault_->counters().recoveries.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
      }
    }
  }

  sim::SimTime duration = 0.0;
  auto accumulate = [&](ObjectId o, bool relocates) {
    sim::SimTime d =
        options_.migration_duration * registry_->descriptor(o).size;
    if (service_ != nullptr) {
      d += service_->migration_overhead(o, registry_->location(o), dest,
                                        relocates);
    }
    duration = options_.transfer == ClusterTransfer::Parallel
                   ? std::max(duration, d)
                   : duration + d;
  };
  for (ObjectId o : moving) accumulate(o, true);
  for (ObjectId o : copying) accumulate(o, false);

  ++transfers_;
  const objsys::BlockId blk_id = blk ? blk->id : objsys::BlockId::invalid();
  for (ObjectId o : moving) {
    if (blk) {
      blk->moved.push_back(o);
      blk->origins_of_moved.push_back(registry_->location(o));
    }
    registry_->begin_transit(o);
    trace_event(trace::EventKind::MigrationStart, o, dest, blk_id);
  }
  charge(blk, duration);
  co_await engine_->delay(duration);
  for (ObjectId o : moving) {
    registry_->finish_transit(o, dest);
    trace_event(trace::EventKind::MigrationEnd, o, dest, blk_id);
  }
  for (ObjectId o : copying) {
    registry_->add_replica(o, dest);
    trace_event(trace::EventKind::ReplicaCreated, o, dest, blk_id);
  }
}

bool MigrationManager::lease_expired(const Lock& lock) const {
  return options_.lock_lease > 0.0 && engine_->now() >= lock.expiry;
}

bool MigrationManager::is_locked(ObjectId obj) const {
  const Lock* lock = locks_.find(obj);
  return lock != nullptr && !lease_expired(*lock);
}

objsys::BlockId MigrationManager::lock_owner(ObjectId obj) const {
  const Lock* lock = locks_.find(obj);
  if (lock == nullptr || lease_expired(*lock)) {
    return objsys::BlockId::invalid();
  }
  return lock->owner;
}

bool MigrationManager::try_lock(ObjectId obj, objsys::BlockId blk) {
  Lock* lock = locks_.find(obj);
  if (lock != nullptr && lease_expired(*lock)) {
    // The holding block outlived its lease — presumed dead with a crashed
    // node. Release the object in place so this move can take over.
    trace_event(trace::EventKind::Unlock, obj, objsys::NodeId::invalid(),
                lock->owner);
    ++lease_expiries_;
    locks_.erase(obj);
    lock = nullptr;
  }
  if (lock == nullptr) {
    locks_.try_emplace(obj, Lock{blk, engine_->now() + options_.lock_lease});
    trace_event(trace::EventKind::Lock, obj, objsys::NodeId::invalid(), blk);
    return true;
  }
  return lock->owner == blk;
}

void MigrationManager::unlock(ObjectId obj, objsys::BlockId blk) {
  const Lock* lock = locks_.find(obj);
  if (lock != nullptr && lock->owner == blk) {
    locks_.erase(obj);
    trace_event(trace::EventKind::Unlock, obj, objsys::NodeId::invalid(),
                blk);
  }
}

void MigrationManager::note_move(ObjectId obj, objsys::NodeId node) {
  std::vector<int>& counts = open_moves_[obj];
  if (counts.size() <= node.value()) counts.resize(node.value() + 1, 0);
  ++counts[node.value()];
}

void MigrationManager::note_end(ObjectId obj, objsys::NodeId node) {
  std::vector<int>* counts = open_moves_.find(obj);
  OMIG_REQUIRE(counts != nullptr, "end without matching move");
  OMIG_REQUIRE(node.value() < counts->size() && (*counts)[node.value()] > 0,
               "end without matching move at this node");
  --(*counts)[node.value()];
}

int MigrationManager::open_moves(ObjectId obj, objsys::NodeId node) const {
  const std::vector<int>* counts = open_moves_.find(obj);
  if (counts == nullptr || node.value() >= counts->size()) return 0;
  return (*counts)[node.value()];
}

objsys::NodeId MigrationManager::strict_majority_node(ObjectId obj) const {
  const std::vector<int>* counts = open_moves_.find(obj);
  if (counts == nullptr) return objsys::NodeId::invalid();
  objsys::NodeId best = objsys::NodeId::invalid();
  int best_count = 0;
  bool tie = false;
  for (std::size_t n = 0; n < counts->size(); ++n) {
    const int count = (*counts)[n];
    if (count > best_count) {
      best = objsys::NodeId{static_cast<objsys::NodeId::value_type>(n)};
      best_count = count;
      tie = false;
    } else if (count == best_count && count > 0) {
      tie = true;
    }
  }
  if (tie || best_count < options_.clear_majority_minimum) {
    return objsys::NodeId::invalid();
  }
  return best;
}

void MigrationManager::set_background_cost_sink(
    std::function<void(double)> sink) {
  background_sink_ = std::move(sink);
}

void MigrationManager::charge(MoveBlock* blk, double cost) {
  if (cost <= 0.0) return;
  if (blk != nullptr) {
    blk->migration_cost += cost;
  } else if (background_sink_) {
    background_sink_(cost);
  }
}

}  // namespace omig::migration
