// Concrete migration policies (one translation unit each).
#pragma once

#include "migration/policy.hpp"

namespace omig::migration {

/// Baseline: objects never move; move()/end() are no-ops and cost nothing
/// ("without migration" curves in the paper's figures).
class SedentaryPolicy final : public MigrationPolicy {
public:
  using MigrationPolicy::MigrationPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::Sedentary;
  }
  sim::Task begin_block(MoveBlock& blk) override;
  void end_block(MoveBlock& blk) override;
};

/// Conventional migration: every move() migrates the target (and its
/// attachment cluster) to the caller, unconditionally (Section 2.3).
class ConventionalPolicy final : public MigrationPolicy {
public:
  using MigrationPolicy::MigrationPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::Conventional;
  }
  sim::Task begin_block(MoveBlock& blk) override;
  void end_block(MoveBlock& blk) override;
};

/// Transient placement (Section 3.2): the first move() wins and locks the
/// object in place; conflicting move()s receive a "locked" indication and
/// fall back to remote invocation; end() unlocks locally.
class PlacementPolicy final : public MigrationPolicy {
public:
  using MigrationPolicy::MigrationPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::Placement;
  }
  sim::Task begin_block(MoveBlock& blk) override;
  void end_block(MoveBlock& blk) override;
};

/// "Comparing the nodes" (Section 4.3): the object is kept at the node that
/// issued the most still-open move-requests; a conflicting move() migrates
/// the object only once its node holds strictly more open requests than the
/// current host node.
class CompareNodesPolicy : public MigrationPolicy {
public:
  using MigrationPolicy::MigrationPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::CompareNodes;
  }
  sim::Task begin_block(MoveBlock& blk) override;
  void end_block(MoveBlock& blk) override;
};

/// "Comparing and reinstantiation" (Section 4.3): like CompareNodes, but an
/// end-request that leaves some other node with a clear majority of open
/// move-requests triggers a (background) migration to that node.
class CompareReinstantiatePolicy final : public CompareNodesPolicy {
public:
  using CompareNodesPolicy::CompareNodesPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::CompareReinstantiate;
  }
  void end_block(MoveBlock& blk) override;
};

/// Beyond-paper goal-conflict policy: interprets move() as a load-sharing
/// request — the object (and its cluster) migrates to the least-loaded
/// node, not to the caller. Section 2.2: "the different goals are not
/// compatible in general … availability calls for distributing objects,
/// while performance calls for collocating them." Mixing this policy with
/// placement clients demonstrates exactly that incompatibility.
class LoadSharePolicy final : public MigrationPolicy {
public:
  using MigrationPolicy::MigrationPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::LoadShare;
  }
  sim::Task begin_block(MoveBlock& blk) override;
  void end_block(MoveBlock& blk) override;
};

/// Feedback-driven placement (docs/policies.md): a move() consults the
/// access-locality tracker and migrates the target's cluster toward the
/// EMA-dominant caller node — but only when that node's share of the recent
/// accesses leads the current host's by the hysteresis band and the EMA has
/// seen enough accesses to mean anything. Everything else is refused and
/// the caller invokes remotely (the placement fallback). Requires a
/// LocalityTracker attached to the manager.
class AdaptivePlacementPolicy : public MigrationPolicy {
public:
  using MigrationPolicy::MigrationPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::Adaptive;
  }
  sim::Task begin_block(MoveBlock& blk) override;
  void end_block(MoveBlock& blk) override;

protected:
  /// Load veto hook for the load-aware variant: true suppresses an
  /// otherwise-approved migration toward `dest` of `cluster_size` objects.
  [[nodiscard]] virtual bool load_vetoes(objsys::NodeId dest,
                                         std::size_t cluster_size) const;
  /// Counts a migration that undoes the object's previous one (host and
  /// destination swapped) into PolicyCounters::pingpong_reversals.
  void note_migration(ObjectId obj, objsys::NodeId from, objsys::NodeId to);

private:
  /// Last completed adaptive migration per object, for reversal detection.
  util::DenseTable<ObjectId, std::pair<objsys::NodeId, objsys::NodeId>>
      last_move_;
};

/// Load-aware adaptive placement: like AdaptivePlacementPolicy, but a
/// dominant node that already hosts more than load_factor × the mean
/// per-node object count vetoes the migration (Section 2.2's load goal as a
/// constraint instead of a competing policy).
class AdaptiveLoadPolicy final : public AdaptivePlacementPolicy {
public:
  using AdaptivePlacementPolicy::AdaptivePlacementPolicy;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::AdaptiveLoad;
  }

protected:
  [[nodiscard]] bool load_vetoes(objsys::NodeId dest,
                                 std::size_t cluster_size) const override;
};

}  // namespace omig::migration
