#include "migration/alliance.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::migration {

AllianceId AllianceRegistry::create(std::string name) {
  const AllianceId id{static_cast<AllianceId::value_type>(alliances_.size())};
  alliances_.push_back(Entry{std::move(name), {}});
  return id;
}

const AllianceRegistry::Entry& AllianceRegistry::entry(AllianceId id) const {
  OMIG_REQUIRE(id.valid() && id.value() < alliances_.size(),
               "unknown alliance id");
  return alliances_[id.value()];
}

AllianceRegistry::Entry& AllianceRegistry::entry(AllianceId id) {
  OMIG_REQUIRE(id.valid() && id.value() < alliances_.size(),
               "unknown alliance id");
  return alliances_[id.value()];
}

const std::string& AllianceRegistry::name(AllianceId id) const {
  return entry(id).name;
}

void AllianceRegistry::add_member(AllianceId id, ObjectId obj) {
  auto& members = entry(id).members;
  if (std::find(members.begin(), members.end(), obj) == members.end()) {
    members.push_back(obj);
  }
}

void AllianceRegistry::remove_member(AllianceId id, ObjectId obj) {
  auto& members = entry(id).members;
  std::erase(members, obj);
}

bool AllianceRegistry::is_member(AllianceId id, ObjectId obj) const {
  const auto& members = entry(id).members;
  return std::find(members.begin(), members.end(), obj) != members.end();
}

const std::vector<ObjectId>& AllianceRegistry::members(AllianceId id) const {
  return entry(id).members;
}

std::vector<AllianceId> AllianceRegistry::alliances_of(ObjectId obj) const {
  std::vector<AllianceId> out;
  for (std::size_t i = 0; i < alliances_.size(); ++i) {
    const AllianceId id{static_cast<AllianceId::value_type>(i)};
    if (is_member(id, obj)) out.push_back(id);
  }
  return out;
}

}  // namespace omig::migration
