// Alliances (Section 3.4): dynamic relationships between cooperating
// objects that make cooperation contexts explicit. An object may belong to
// several alliances; a migration primitive can be unambiguously related to
// one alliance, which restricts the transitive closure of attachments that
// it drags along (A-transitive attachment).
#pragma once

#include <string>
#include <vector>

#include "objsys/ids.hpp"

namespace omig::migration {

using objsys::AllianceId;
using objsys::ObjectId;

/// Registry of alliances and their memberships.
class AllianceRegistry {
public:
  /// Creates a new (empty) alliance.
  AllianceId create(std::string name);

  [[nodiscard]] std::size_t count() const { return alliances_.size(); }
  [[nodiscard]] const std::string& name(AllianceId id) const;

  /// Adds an object to an alliance (idempotent).
  void add_member(AllianceId id, ObjectId obj);
  /// Removes an object from an alliance (no-op if absent).
  void remove_member(AllianceId id, ObjectId obj);

  [[nodiscard]] bool is_member(AllianceId id, ObjectId obj) const;
  [[nodiscard]] const std::vector<ObjectId>& members(AllianceId id) const;
  /// All alliances `obj` belongs to (objects can be members of several).
  [[nodiscard]] std::vector<AllianceId> alliances_of(ObjectId obj) const;

private:
  struct Entry {
    std::string name;
    std::vector<ObjectId> members;
  };

  [[nodiscard]] const Entry& entry(AllianceId id) const;
  [[nodiscard]] Entry& entry(AllianceId id);

  std::vector<Entry> alliances_;
};

}  // namespace omig::migration
