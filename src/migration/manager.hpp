// Migration manager: the run-time support of Section 3.1.
//
// Migration requests are interpreted at the node of the callee instead of
// being executed blindly — this is where the place-policy and the dynamic
// policies hook in. The manager owns the shared mechanics all policies use:
// computing the attachment cluster that migrates with an object, performing
// the physical transfer (closing transit gates, advancing time by M,
// relocating), placement locks, and the per-node open-move bookkeeping used
// by the dynamic policies of Section 3.3.
#pragma once

#include <functional>
#include <vector>

#include "fault/injector.hpp"
#include "migration/alliance.hpp"
#include "migration/attachment.hpp"
#include "migration/block.hpp"
#include "net/latency.hpp"
#include "objsys/locality.hpp"
#include "objsys/location_service.hpp"
#include "objsys/registry.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "trace/log.hpp"
#include "util/dense_table.hpp"

namespace omig::migration {

using objsys::ObjectRegistry;

/// Which attachment closure a migration drags along.
enum class AttachTransitivity {
  Unrestricted,  ///< conventional: the whole connected component
  ATransitive,   ///< restricted to the edges of the block's alliance
};

/// How a multi-object cluster is physically transferred.
enum class ClusterTransfer {
  Parallel,  ///< all members in flight concurrently: duration = max(M_i)
  Serial,    ///< one after another: duration = sum(M_i)
};

struct ManagerOptions {
  /// Migration duration per unit of object size (paper: M = 6, size 1).
  double migration_duration = 6.0;
  AttachTransitivity transitivity = AttachTransitivity::Unrestricted;
  ClusterTransfer transfer = ClusterTransfer::Parallel;
  /// Minimum open-move count for a node to hold a "clear majority"
  /// (Section 4.3's reinstantiation trigger). The paper does not quantify
  /// "clear"; 2 avoids ping-ponging the object after every end-request
  /// towards whichever single block happens to be open.
  int clear_majority_minimum = 2;
  /// Placement-lock lease in sim time. A lock older than this is presumed
  /// orphaned (its block died with a crashed node or stalled) and expires:
  /// the object is released in place and a competing move may take over.
  /// Zero = locks never expire (the paper's semantics).
  double lock_lease = 0.0;

  // --- adaptive policies (docs/policies.md) -------------------------------
  /// Hysteresis band for the adaptive policies: the EMA-dominant node must
  /// lead the current host's share by at least this margin before the
  /// object migrates (design decision 9, docs/ARCHITECTURE.md — prevents
  /// ping-ponging between two evenly-matched callers).
  double hysteresis_band = 0.2;
  /// Minimum effective EMA sample size before an adaptive migration is
  /// considered at all (a single access must not relocate an object).
  double adaptive_min_weight = 4.0;
  /// Load veto for the load-aware adaptive policy: a migration toward the
  /// dominant node is suppressed when that node already hosts more than
  /// `load_factor` × the mean per-node object count.
  double load_factor = 2.0;
};

/// Per-run tallies of the adaptive policies' decisions, folded into the
/// omig_policy_* families once per run (core/experiment.cpp). Plain
/// integers: the engine is single-threaded.
struct PolicyCounters {
  std::uint64_t migrations_triggered = 0;   ///< adaptive moves executed
  std::uint64_t suppressed_hysteresis = 0;  ///< margin/weight under the band
  std::uint64_t suppressed_load = 0;        ///< load veto fired
  std::uint64_t pingpong_reversals = 0;     ///< move undoing the previous one
};

class MigrationManager {
public:
  MigrationManager(sim::Engine& engine, ObjectRegistry& registry,
                   const net::LatencyModel& latency, sim::Rng& rng,
                   AttachmentGraph& attachments, AllianceRegistry& alliances,
                   ManagerOptions options);

  [[nodiscard]] const ManagerOptions& options() const { return options_; }
  [[nodiscard]] ObjectRegistry& registry() { return *registry_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] AttachmentGraph& attachments() { return *attachments_; }
  [[nodiscard]] AllianceRegistry& alliances() { return *alliances_; }

  /// Creates a fresh move-block context.
  MoveBlock new_block(objsys::NodeId origin, ObjectId target,
                      AllianceId alliance = AllianceId::invalid(),
                      bool visit = false);

  /// The set of objects that migrates together with `obj` under the
  /// configured transitivity, given the block's alliance context.
  [[nodiscard]] std::vector<ObjectId> migration_cluster(
      ObjectId obj, AllianceId alliance) const;

  /// One-way control message from `from` to the *current* location of
  /// `about` (e.g. a move request). Charged to `blk` (may be null).
  sim::Task control_message(objsys::NodeId from, ObjectId about,
                            MoveBlock* blk);

  /// One-way control message from the current location of `about` back to
  /// `to` (e.g. the "locked" indication of the place-policy).
  sim::Task control_reply(ObjectId about, objsys::NodeId to, MoveBlock* blk);

  /// Physically migrates `objs` to `dest`: waits for members that are in
  /// transit, drops members that are unmovable or already at `dest`, then
  /// advances time by the (parallel or serial) transfer duration and
  /// relocates. Appends the objects actually moved (with their previous
  /// locations) to blk->moved / blk->origins_of_moved and charges the
  /// duration to the block (or to the background sink if blk is null).
  sim::Task transfer(std::vector<ObjectId> objs, objsys::NodeId dest,
                     MoveBlock* blk);

  // --- placement locks ----------------------------------------------------
  /// Expired leases read as unlocked everywhere; the actual release (and
  /// its Unlock trace event) happens when the next try_lock touches them.
  [[nodiscard]] bool is_locked(ObjectId obj) const;
  [[nodiscard]] objsys::BlockId lock_owner(ObjectId obj) const;
  /// Acquires the lock for `blk` if free (or already held by `blk`),
  /// expiring a dead holder's lease first.
  bool try_lock(ObjectId obj, objsys::BlockId blk);
  /// Releases the lock if held by `blk`.
  void unlock(ObjectId obj, objsys::BlockId blk);
  [[nodiscard]] std::size_t locked_count() const { return locks_.size(); }
  /// Locks released because their lease ran out.
  [[nodiscard]] std::uint64_t lease_expiries() const {
    return lease_expiries_;
  }

  // --- open-move bookkeeping (dynamic policies, Section 3.3) --------------
  void note_move(ObjectId obj, objsys::NodeId node);
  void note_end(ObjectId obj, objsys::NodeId node);
  [[nodiscard]] int open_moves(ObjectId obj, objsys::NodeId node) const;
  /// The unique node with strictly the most open moves on `obj` (count >=
  /// options().clear_majority_minimum), or invalid() on a tie / no such
  /// node.
  [[nodiscard]] objsys::NodeId strict_majority_node(ObjectId obj) const;

  /// Sink for migration cost not attributable to any block (reinstantiation
  /// migrations triggered by end-requests run in the background).
  void set_background_cost_sink(std::function<void(double)> sink);

  /// Optional location-mechanism cost model: migrations then pay the
  /// scheme's update overhead (name-server update, immediate-update fan-out).
  /// Not owned.
  void set_location_service(objsys::LocationService* service) {
    service_ = service;
  }

  /// Access-locality tracker the adaptive policies consult; attached by the
  /// experiment driver for the adaptive PolicyKinds. Not owned.
  void set_locality_tracker(objsys::LocalityTracker* tracker) {
    locality_ = tracker;
  }
  [[nodiscard]] objsys::LocalityTracker* locality() { return locality_; }

  /// Adaptive-policy decision tallies (see PolicyCounters).
  [[nodiscard]] PolicyCounters& policy_counters() { return policy_counters_; }
  [[nodiscard]] const PolicyCounters& policy_counters() const {
    return policy_counters_;
  }

  /// Optional instrumentation: all protocol events (requests, refusals,
  /// transits, locks) are recorded into `log`. Not owned; null disables.
  void set_trace(trace::TraceLog* log) { trace_ = log; }

  /// Optional fault model (docs/fault_model.md). Control messages may be
  /// dropped (charged one retry timeout per retransmission) or delayed; a
  /// transfer waits for a crashed destination to restart (the stall is
  /// charged to the block) and pulls members off a dead source from their
  /// checkpoint (counted as recoveries). Neither is owned; null disables.
  void set_fault(fault::FaultInjector* injector, fault::NodeHealth* health) {
    fault_ = injector;
    health_ = health;
  }

  /// Emits a trace event if a trace log is attached (used by policies for
  /// block-begin/end and refusal events).
  void trace_event(trace::EventKind kind,
                   ObjectId object = ObjectId::invalid(),
                   objsys::NodeId node = objsys::NodeId::invalid(),
                   objsys::BlockId block = objsys::BlockId::invalid());

  [[nodiscard]] std::uint64_t transfers_started() const { return transfers_; }
  [[nodiscard]] std::uint64_t control_messages() const { return control_; }

private:
  struct Lock {
    objsys::BlockId owner;
    sim::SimTime expiry;  ///< meaningful only when options_.lock_lease > 0
  };

  void charge(MoveBlock* blk, double cost);
  [[nodiscard]] bool lease_expired(const Lock& lock) const;
  /// Cost of one control-message leg including injected faults (mirrors
  /// Invoker::message_leg).
  [[nodiscard]] sim::SimTime message_cost(std::size_t from, std::size_t to);

  sim::Engine* engine_;
  ObjectRegistry* registry_;
  const net::LatencyModel* latency_;
  sim::Rng* rng_;
  AttachmentGraph* attachments_;
  AllianceRegistry* alliances_;
  ManagerOptions options_;

  // Dense id-indexed tables (docs/performance.md): object ids are allocated
  // contiguously, so the lock and open-move lookups on the migration hot
  // path are flat indexed loads instead of hashes.
  util::DenseTable<ObjectId, Lock> locks_;
  std::uint64_t lease_expiries_ = 0;
  /// Per object: open-move counts indexed by node id value.
  util::DenseTable<ObjectId, std::vector<int>> open_moves_;
  std::function<void(double)> background_sink_;
  objsys::LocationService* service_ = nullptr;
  objsys::LocalityTracker* locality_ = nullptr;
  PolicyCounters policy_counters_;
  trace::TraceLog* trace_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  fault::NodeHealth* health_ = nullptr;
  objsys::BlockId::value_type next_block_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t control_ = 0;
};

}  // namespace omig::migration
