#include "migration/policy_impl.hpp"

namespace omig::migration {

sim::Task PlacementPolicy::begin_block(MoveBlock& blk) {
  mgr_->trace_event(trace::EventKind::BlockBegin, blk.target, blk.origin,
                    blk.id);
  // Move request forwarded to the current location of the target, as usual.
  co_await mgr_->control_message(blk.origin, blk.target, &blk);

  auto& reg = mgr_->registry();

  // Static objects never conflict: "moving a static object simply creates
  // a copy" (Section 1) — no lock is taken and no refusal can happen.
  if (reg.descriptor(blk.target).immutable) {
    auto copy_cluster = mgr_->migration_cluster(blk.target, blk.alliance);
    co_await mgr_->transfer(std::move(copy_cluster), blk.origin, &blk);
    co_return;
  }

  // Interpreted at the object (Section 3.2): if another unfinished move
  // holds the object — or it is fixed — the move has no effect; the
  // caller's further invocations are simply forwarded remotely and its
  // end-request will be ignored. Only the request message is charged —
  // this matches the paper's M + (2N+1)·C accounting, where a conflicting
  // move contributes exactly one message (the indication rides back with
  // the first forwarded call; no dedicated reply is modelled).
  const bool conflicting =
      mgr_->is_locked(blk.target) && mgr_->lock_owner(blk.target) != blk.id;
  if (conflicting || reg.is_fixed(blk.target) ||
      !reg.descriptor(blk.target).mobile) {
    mgr_->trace_event(trace::EventKind::MoveRefused, blk.target, blk.origin,
                      blk.id);
    blk.lock_held = false;
    co_return;
  }

  // Successful move: lock every cluster member we can get (members locked
  // by a conflicting block stay where they are — partial move), transfer,
  // and keep the lock until the end-request.
  auto cluster = mgr_->migration_cluster(blk.target, blk.alliance);
  for (ObjectId o : cluster) {
    if (mgr_->try_lock(o, blk.id)) blk.locked.push_back(o);
  }
  blk.lock_held = true;
  // Members that are already local stay locked but need no transfer; the
  // manager filters those. Locks persist until the end-request.
  co_await mgr_->transfer(blk.locked, blk.origin, &blk);
}

void PlacementPolicy::end_block(MoveBlock& blk) {
  // The end-request is a local operation: either it unlocks (successful
  // move) or it is simply ignored (failed move) — no remote messages.
  mgr_->trace_event(trace::EventKind::BlockEnd, blk.target, blk.origin,
                    blk.id);
  if (!blk.lock_held) return;
  for (ObjectId o : blk.locked) mgr_->unlock(o, blk.id);
  blk.lock_held = false;
  if (blk.visit) migrate_back(blk);
}

}  // namespace omig::migration
