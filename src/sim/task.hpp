// Coroutine task type for simulation processes.
//
// Simulation processes (clients, migrations, network messages) are written as
// straight-line C++20 coroutines that `co_await` delays, gates and sub-tasks.
// This keeps the protocol logic readable — the paper's move-block pseudo-code
// (Figure 2) maps 1:1 onto a coroutine body — instead of hand-written event
// state machines.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_pool.hpp"
#include "util/assert.hpp"

namespace omig::sim {

/// An eagerly-ownable, lazily-started coroutine task.
///
/// * `co_await task` from another coroutine chains via symmetric transfer.
/// * The Task object owns the coroutine frame; destroying a suspended task
///   destroys the frame (used to tear down endless workload processes when
///   the engine stops).
class [[nodiscard]] Task {
public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      auto& p = h.promise();
      p.done = true;
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::coroutine_handle<> continuation;  ///< resumed when this task finishes
    std::exception_ptr exception;
    bool done = false;

    // Frames come from the thread-local FramePool: simulation processes are
    // spawned at call rate, and recycling their frames removes the per-task
    // heap round-trip from the kernel hot path. Only the sized delete is
    // declared, so the compiler always reports the frame size back and the
    // pool can bin the block by size class without a header.
    static void* operator new(std::size_t bytes) {
      return FramePool::local().allocate(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      FramePool::local().deallocate(p, bytes);
    }

    Task get_return_object() { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) : handle_{h} {}
  Task(Task&& other) noexcept : handle_{std::exchange(other.handle_, {})} {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.promise().done; }

  /// Starts (or resumes) the task from non-coroutine code.
  void resume() {
    OMIG_ASSERT(handle_ && !handle_.promise().done);
    handle_.resume();
    rethrow_if_failed();
  }

  /// Rethrows an exception that escaped the coroutine body, if any.
  void rethrow_if_failed() {
    if (handle_ && handle_.promise().done && handle_.promise().exception) {
      std::rethrow_exception(
          std::exchange(handle_.promise().exception, nullptr));
    }
  }

  /// Awaiter so that a parent coroutine can `co_await` a child task.
  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return handle.promise().done; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      handle.promise().continuation = parent;
      return handle;  // start the child via symmetric transfer
    }
    void await_resume() const {
      if (handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
    }
  };

  Awaiter operator co_await() const {
    OMIG_ASSERT(handle_);
    return Awaiter{handle_};
  }

  /// Releases ownership of the coroutine frame to the caller.
  Handle release() { return std::exchange(handle_, {}); }

  /// Non-owning view of the coroutine handle (for scheduling).
  [[nodiscard]] Handle handle() const { return handle_; }

private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace omig::sim
