// Index-addressable d-ary min-heap over a reusable slab — the engine's
// event queue.
//
// Why not std::priority_queue: the adaptor hides its container, so the
// engine could neither retain the slab across clear()/runs nor fuse the
// pop/push pair that dominates the dispatch loop (almost every resumed
// process immediately schedules its next event). This heap exposes exactly
// those two operations:
//
//  * clear() keeps the slab — a sweep cell reuses the previous cell's
//    capacity instead of re-growing from empty, and no event push ever
//    allocates once the high-water mark is reached;
//  * replace_top() substitutes the minimum in one sift-down, turning the
//    common pop-then-push sequence (cost: one full sift-down plus one
//    sift-up) into a single traversal.
//
// Determinism: the ordering key (at, seq) is a strict total order (seq is
// unique), so the pop sequence is the fully sorted event order — identical
// for this heap, std::priority_queue, or any other correct priority queue.
// The kernel overhaul can therefore swap the queue implementation without
// perturbing a single simulation result.
#pragma once

#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace omig::sim {

/// One scheduled resumption.
struct Event {
  SimTime at;
  std::uint64_t seq;  ///< FIFO tie-breaker for simultaneous events
  std::coroutine_handle<> handle;
};

class EventHeap {
public:
  /// Branching factor. 4 halves the tree depth versus a binary heap and
  /// keeps one node's children inside two cache lines (4 × 24 B), which is
  /// what the deep-queue sift-down is bound by. Any arity pops the same
  /// (at, seq)-sorted sequence.
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] bool empty() const { return slab_.empty(); }
  [[nodiscard]] std::size_t size() const { return slab_.size(); }
  [[nodiscard]] std::size_t capacity() const { return slab_.capacity(); }

  void reserve(std::size_t n) { slab_.reserve(n); }

  /// Drops every event but keeps the slab's capacity.
  void clear() { slab_.clear(); }

  /// The earliest event: smallest (at, seq).
  [[nodiscard]] const Event& top() const {
    OMIG_ASSERT(!slab_.empty());
    return slab_.front();
  }

  void push(const Event& ev) {
    slab_.push_back(ev);
    sift_up(slab_.size() - 1);
  }

  /// Removes the minimum.
  void pop() {
    OMIG_ASSERT(!slab_.empty());
    const Event last = slab_.back();
    slab_.pop_back();
    if (!slab_.empty()) place_from_root(last);
  }

  /// Equivalent to pop() followed by push(ev) but with a single sift-down
  /// from the root — the fused fast path of the dispatch loop.
  void replace_top(const Event& ev) {
    OMIG_ASSERT(!slab_.empty());
    place_from_root(ev);
  }

private:
  [[nodiscard]] static bool before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t hole) {
    const Event v = slab_[hole];
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (!before(v, slab_[parent])) break;
      slab_[hole] = slab_[parent];
      hole = parent;
    }
    slab_[hole] = v;
  }

  /// Sifts `v` down from the root into its position (the root is a hole).
  void place_from_root(const Event& v) {
    const std::size_t n = slab_.size();
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = kArity * hole + 1;
      if (first >= n) break;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(slab_[c], slab_[best])) best = c;
      }
      if (!before(slab_[best], v)) break;
      slab_[hole] = slab_[best];
      hole = best;
    }
    slab_[hole] = v;
  }

  std::vector<Event> slab_;
};

}  // namespace omig::sim
