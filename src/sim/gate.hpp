// Condition primitive for simulation processes.
//
// A Gate is either open or closed. Processes `co_await gate.wait()`: if the
// gate is open they continue immediately; if it is closed they suspend until
// someone calls `open()`. The object system closes an object's gate while
// the object is in transit — this is how "the call is blocked until the
// object is operational once again" (paper, Section 4.1) is modelled.
#pragma once

#include <coroutine>
#include <vector>

#include "sim/engine.hpp"

namespace omig::sim {

class Gate {
public:
  /// A gate starts open (the object is operational).
  explicit Gate(Engine& engine) : engine_{&engine} {}

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;
  Gate(Gate&&) = default;
  Gate& operator=(Gate&&) = default;

  [[nodiscard]] bool is_open() const { return open_; }

  /// Closes the gate; subsequent waiters suspend.
  void close() { open_ = false; }

  /// Opens the gate and schedules every waiter to resume at the current
  /// simulated time. Waiters must re-check their condition after resuming
  /// (the gate may have been closed again by an earlier-scheduled process).
  void open();

  struct Awaiter {
    Gate* gate;
    bool await_ready() const noexcept { return gate->open_; }
    void await_suspend(std::coroutine_handle<> h) {
      gate->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable: continue when the gate is (or becomes) open.
  [[nodiscard]] Awaiter wait() { return Awaiter{this}; }

  /// Number of processes currently suspended on this gate.
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

private:
  Engine* engine_;
  std::vector<std::coroutine_handle<>> waiters_;
  bool open_ = true;
};

}  // namespace omig::sim
