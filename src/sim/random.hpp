// Deterministic random number generation for the simulator.
//
// We use xoshiro256** seeded through splitmix64: fast, high quality, and —
// unlike std::mt19937 with std::*_distribution — bit-for-bit reproducible
// across standard library implementations, which keeps experiment results
// stable across toolchains.
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace omig::sim {

/// splitmix64 — used to expand a single seed into xoshiro state and to derive
/// independent per-stream seeds.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Period 2^256 − 1.
class Xoshiro256ss {
public:
  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Xoshiro256ss(std::uint64_t seed);

  std::uint64_t next();

private:
  std::array<std::uint64_t, 4> state_;
};

/// Random stream with the distributions the simulation model needs.
///
/// Every simulated entity gets its own stream (derived from a master seed and
/// a stream index) so that adding entities does not perturb the draws of
/// existing ones — a standard variance-reduction / reproducibility technique.
class Rng {
public:
  /// Stream `stream` of the family identified by `master_seed`.
  Rng(std::uint64_t master_seed, std::uint64_t stream);

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponentially distributed with the given mean. `mean == 0` yields 0,
  /// which the workload uses for degenerate "no gap" parameters.
  SimTime exponential(double mean);

  /// A count with (approximately) exponential distribution of the given mean,
  /// rounded to the nearest integer and clamped to >= 1. The paper declares
  /// the number of calls per move-block "exp." distributed; a block with zero
  /// calls would be ill-formed, hence the clamp (documented in DESIGN.md).
  int exponential_count(double mean);

private:
  Xoshiro256ss gen_;
};

}  // namespace omig::sim
