#include "sim/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::sim {

Task Engine::root_wrapper(Task inner) {
  // Root processes must not leak exceptions into the event loop; record the
  // failure and stop the simulation so `run` can rethrow it.
  try {
    co_await inner;
  } catch (...) {
    record_error(std::current_exception());
    request_stop();
  }
}

void Engine::spawn(Task t) {
  OMIG_REQUIRE(t.valid(), "cannot spawn an empty task");
  // Bound the root list: completed background processes (e.g. reinstantiation
  // migrations) are reclaimed lazily.
  if (roots_.size() >= 64 && roots_.size() % 64 == 0) prune_finished_roots();
  Task wrapper = root_wrapper(std::move(t));
  const std::coroutine_handle<> h = wrapper.handle();
  roots_.push_back(std::move(wrapper));
  schedule_handle(now_, h);
}

void Engine::run() { run_until(kTimeInfinity); }

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.at > deadline) break;
    now_ = top.at;
    const std::coroutine_handle<> h = top.handle;
    // Mark the top consumed instead of popping: if the resumed process
    // schedules (the overwhelmingly common case — delays, gate reopenings),
    // its first event replaces the top in one sift-down.
    top_consumed_ = true;
    ++events_;
    h.resume();
    if (top_consumed_) {
      top_consumed_ = false;
      queue_.pop();
    }
  }
  if (error_) {
    auto e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::record_error(std::exception_ptr e) {
  if (!error_) error_ = std::move(e);
}

void Engine::clear() {
  // Drop queued handles first (they point into frames owned by roots_),
  // then destroy the frames. The slab keeps its capacity.
  queue_.clear();
  top_consumed_ = false;
  roots_.clear();
}

void Engine::prune_finished_roots() {
  std::erase_if(roots_, [](const Task& t) { return t.done(); });
}

}  // namespace omig::sim
