#include "sim/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::sim {

void DelayAwaiter::await_suspend(std::coroutine_handle<> h) const {
  engine->schedule_handle(engine->now() + dt, h);
}

Task Engine::root_wrapper(Task inner) {
  // Root processes must not leak exceptions into the event loop; record the
  // failure and stop the simulation so `run` can rethrow it.
  try {
    co_await inner;
  } catch (...) {
    record_error(std::current_exception());
    request_stop();
  }
}

void Engine::spawn(Task t) {
  OMIG_REQUIRE(t.valid(), "cannot spawn an empty task");
  // Bound the root list: completed background processes (e.g. reinstantiation
  // migrations) are reclaimed lazily.
  if (roots_.size() >= 64 && roots_.size() % 64 == 0) prune_finished_roots();
  Task wrapper = root_wrapper(std::move(t));
  const std::coroutine_handle<> h = wrapper.handle();
  roots_.push_back(std::move(wrapper));
  schedule_handle(now_, h);
}

DelayAwaiter Engine::delay(SimTime dt) {
  OMIG_REQUIRE(dt >= 0.0, "cannot delay by negative time");
  return DelayAwaiter{this, dt};
}

void Engine::schedule_handle(SimTime at, std::coroutine_handle<> h) {
  OMIG_REQUIRE(at >= now_, "cannot schedule into the past");
  OMIG_ASSERT(h);
  queue_.push(Event{at, seq_++, h});
}

void Engine::run() { run_until(kTimeInfinity); }

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && !stop_requested_) {
    const Event ev = queue_.top();
    if (ev.at > deadline) break;
    queue_.pop();
    now_ = ev.at;
    dispatch(ev);
  }
  if (error_) {
    auto e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::dispatch(const Event& ev) {
  ++events_;
  ev.handle.resume();
}

void Engine::record_error(std::exception_ptr e) {
  if (!error_) error_ = std::move(e);
}

void Engine::clear() {
  // Drop queued handles first (they point into frames owned by roots_),
  // then destroy the frames.
  while (!queue_.empty()) queue_.pop();
  roots_.clear();
}

void Engine::prune_finished_roots() {
  std::erase_if(roots_, [](const Task& t) { return t.done(); });
}

}  // namespace omig::sim
