#include "sim/frame_pool.hpp"

#include <new>

namespace omig::sim {

FramePool& FramePool::local() {
  thread_local FramePool pool;
  return pool;
}

void* FramePool::allocate(std::size_t bytes) {
  const std::size_t cls = class_of(bytes);
  if (cls < kClasses) {
    if (FreeNode* node = free_[cls]) {
      free_[cls] = node->next;
      --parked_;
      ++reuses_;
      return node;
    }
    ++fresh_;
    // Allocate the full class size so the block is reusable for any frame
    // of the same class, whatever its exact byte count.
    return ::operator new(cls * kGranularity);
  }
  ++fresh_;
  return ::operator new(bytes);
}

void FramePool::deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t cls = class_of(bytes);
  if (cls < kClasses) {
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
    ++parked_;
    return;
  }
  ::operator delete(p);
}

void FramePool::release() noexcept {
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    FreeNode* node = free_[cls];
    free_[cls] = nullptr;
    while (node != nullptr) {
      FreeNode* next = node->next;
      ::operator delete(node);
      node = next;
    }
  }
  parked_ = 0;
}

}  // namespace omig::sim
