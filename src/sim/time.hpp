// Simulation time.
//
// The paper normalises time so that one remote invocation message has an
// exponentially distributed duration with mean 1 (Section 4.1). All times in
// the simulator are therefore dimensionless multiples of that mean.
#pragma once

namespace omig::sim {

/// Simulated time, in multiples of the mean one-way message duration.
using SimTime = double;

/// Time value used to mean "never" / "not scheduled".
inline constexpr SimTime kTimeInfinity = 1e300;

}  // namespace omig::sim
