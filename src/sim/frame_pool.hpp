// Size-class free-list pool for coroutine frames.
//
// Every simulation process — clients, migrations, control messages — is a
// coroutine, and the default promise allocator pays one heap round-trip per
// frame. A workload run spawns short-lived tasks (control_message, transfer,
// resolve) at call rate, so the allocator shows up directly in simulator
// throughput. Task's promise routes frame allocation here instead: freed
// frames are parked on a per-size-class free list and handed back on the
// next allocation of the same class, so steady-state simulation performs no
// frame allocation at all.
//
// The pool is thread-local. The engine is single-threaded and the parallel
// sweep runs one engine per worker at a time, so "per thread" and "per
// engine" coincide on the hot path; a frame freed on another thread (which
// the simulator never does, but the pool tolerates) simply migrates to that
// thread's pool. No locks, no atomics, no sharing — a TSan-clean design by
// construction (tests/sim/engine_pool_test.cpp stresses it across threads).
//
// Determinism: allocation addresses never feed into simulation logic (no
// pointer-keyed ordered iteration anywhere in the sim layer), so recycling
// frames cannot perturb results.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omig::sim {

class FramePool {
public:
  /// Size classes are multiples of 64 bytes; frames above the largest class
  /// fall through to the global allocator.
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 40;  ///< pools frames ≤ 2496 B
  static constexpr std::size_t kMaxPooledBytes = (kClasses - 1) * kGranularity;

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() { release(); }

  /// The calling thread's pool (what Task's promise operators use).
  [[nodiscard]] static FramePool& local();

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Returns every parked frame to the global allocator (leak hygiene for
  /// LSan; also lets tests reset the pool between measurements).
  void release() noexcept;

  // --- diagnostics ---------------------------------------------------------
  /// Allocations served by popping a parked frame (no heap traffic).
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  /// Allocations that had to touch the global allocator (cold misses and
  /// frames larger than the largest size class).
  [[nodiscard]] std::uint64_t fresh_allocs() const { return fresh_; }
  /// Frames currently parked across all size classes.
  [[nodiscard]] std::size_t parked() const { return parked_; }

private:
  struct FreeNode {
    FreeNode* next;
  };

  /// 1-based size-class index; >= kClasses means "not pooled".
  [[nodiscard]] static std::size_t class_of(std::size_t bytes) {
    return (bytes + kGranularity - 1) / kGranularity;
  }

  FreeNode* free_[kClasses] = {};
  std::uint64_t reuses_ = 0;
  std::uint64_t fresh_ = 0;
  std::size_t parked_ = 0;
};

}  // namespace omig::sim
