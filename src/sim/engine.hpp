// Discrete-event simulation engine.
//
// A single-threaded event loop: processes are coroutines (`Task`) which
// suspend on `co_await engine.delay(dt)` (advance simulated time) or on a
// `Gate` (wait for a condition). The engine owns all root processes and
// resumes whichever handle is due next.
//
// Hot-path layout (docs/performance.md): the queue is an EventHeap — a
// binary heap over a reusable slab, no allocation per push, capacity kept
// across clear()/runs — and the dispatch loop fuses the pop/push pair that
// almost every resumed process generates (it consumes the top, resumes, and
// lets the first event scheduled during the resumption replace the top in a
// single sift-down). Coroutine frames are pooled by sim::FramePool via
// Task's promise. All of this is result-neutral: the (at, seq) order is a
// strict total order, so the event sequence is bit-identical to the
// original std::priority_queue kernel.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace omig::sim {

class Engine;

/// Awaiter returned by Engine::delay — suspends the coroutine and schedules
/// it `dt` simulated time units in the future.
struct DelayAwaiter {
  Engine* engine;
  SimTime dt;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const;
  void await_resume() const noexcept {}
};

/// The simulation event loop.
///
/// Lifetime rules: the engine must outlive the last `run*` call; root tasks
/// spawned into it are owned by the engine and are torn down (including all
/// of their suspended children) when the engine is destroyed or `reset`.
class Engine {
public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() { clear(); }

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Total events (coroutine resumptions) processed so far.
  [[nodiscard]] std::uint64_t events_processed() const { return events_; }

  /// Transfers ownership of `t` to the engine and schedules it to start at
  /// the current simulated time. May be called before `run` or from inside
  /// a running process.
  void spawn(Task t);

  /// Awaitable that advances simulated time by `dt >= 0`.
  [[nodiscard]] DelayAwaiter delay(SimTime dt) {
    OMIG_REQUIRE(dt >= 0.0, "cannot delay by negative time");
    return DelayAwaiter{this, dt};
  }

  /// Schedules `h` to be resumed at absolute time `at` (>= now). Used by
  /// awaiter implementations (delay, gates); not part of the workload API.
  /// The first schedule issued while the loop is mid-dispatch takes the
  /// consumed top's slot (one sift-down instead of pop + push).
  void schedule_handle(SimTime at, std::coroutine_handle<> h) {
    OMIG_REQUIRE(at >= now_, "cannot schedule into the past");
    OMIG_ASSERT(h);
    const Event ev{at, seq_++, h};
    if (top_consumed_) {
      top_consumed_ = false;
      queue_.replace_top(ev);
    } else {
      queue_.push(ev);
    }
  }

  /// Runs until the event queue is empty or a stop is requested. Rethrows
  /// the first exception that escaped any root process.
  void run();

  /// Runs until simulated time would exceed `deadline`, the queue drains, or
  /// a stop is requested. Events at exactly `deadline` are processed.
  void run_until(SimTime deadline);

  /// Asks the loop to stop before processing the next event. Safe to call
  /// from inside a running process (this is how experiments end: the metric
  /// recorder requests a stop once the confidence target is met).
  void request_stop() { stop_requested_ = true; }

  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Records a failure from a root process; rethrown by `run`.
  void record_error(std::exception_ptr e);

  /// Destroys all pending processes and clears the queue; time is preserved
  /// and the event slab keeps its capacity for the next run.
  void clear();

  /// Pre-sizes the event slab (the heap grows on demand regardless).
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Capacity of the event slab (diagnostics / tests).
  [[nodiscard]] std::size_t event_capacity() const {
    return queue_.capacity();
  }

private:
  Task root_wrapper(Task inner);
  void prune_finished_roots();

  EventHeap queue_;
  std::vector<Task> roots_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  bool stop_requested_ = false;
  /// True while the loop has logically removed the top but not yet popped
  /// it (the dispatch window in which replace_top fusion applies).
  bool top_consumed_ = false;
  std::exception_ptr error_;
};

inline void DelayAwaiter::await_suspend(std::coroutine_handle<> h) const {
  engine->schedule_handle(engine->now() + dt, h);
}

}  // namespace omig::sim
