#include "sim/gate.hpp"

namespace omig::sim {

void Gate::open() {
  open_ = true;
  // Move out first: a resumed waiter may close the gate and wait again.
  std::vector<std::coroutine_handle<>> woken;
  woken.swap(waiters_);
  for (auto h : woken) engine_->schedule_handle(engine_->now(), h);
}

}  // namespace omig::sim
