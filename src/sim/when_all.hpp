// Fork/join for simulation processes.
//
// `co_await when_all(engine, tasks)` runs every task concurrently (each as
// its own engine process) and resumes the awaiting coroutine once all of
// them have finished — simulated time advances to the latest completion.
// Used for parallel sub-operations whose wall time is the max, not the sum
// (e.g. scanning the fragments of a fragmented service concurrently).
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/gate.hpp"
#include "sim/task.hpp"

namespace omig::sim {

namespace detail {

struct JoinState {
  explicit JoinState(Engine& engine) : gate{engine} { gate.close(); }
  Gate gate;
  std::size_t remaining = 0;
};

inline Task join_watcher(Task inner, std::shared_ptr<JoinState> state) {
  co_await inner;
  if (--state->remaining == 0) state->gate.open();
}

}  // namespace detail

/// Awaitable barrier over `tasks`. An empty vector completes immediately.
/// Exceptions escaping a child are reported through the engine's root
/// error handling (the join itself never rethrows them — children run as
/// independent processes).
inline Task when_all(Engine& engine, std::vector<Task> tasks) {
  auto state = std::make_shared<detail::JoinState>(engine);
  state->remaining = tasks.size();
  if (tasks.empty()) co_return;
  for (Task& t : tasks) {
    engine.spawn(detail::join_watcher(std::move(t), state));
  }
  while (!state->gate.is_open()) co_await state->gate.wait();
}

}  // namespace omig::sim
