#include "sim/random.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace omig::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Xoshiro256ss::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng::Rng(std::uint64_t master_seed, std::uint64_t stream)
    : gen_{SplitMix64{master_seed ^ (0x5851f42d4c957f2dULL * (stream + 1))}
               .next()} {}

double Rng::uniform() {
  // 53 random bits → double in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  OMIG_REQUIRE(n > 0, "uniform_int requires a non-empty range");
  // Lemire-style rejection-free bound would be overkill; modulo bias is
  // negligible for the small ranges the workload uses, but we still reject
  // to keep the streams unbiased.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t x = gen_.next();
  while (x >= limit) x = gen_.next();
  return x % n;
}

SimTime Rng::exponential(double mean) {
  OMIG_REQUIRE(mean >= 0.0, "exponential mean must be non-negative");
  if (mean == 0.0) return 0.0;
  // Inverse CDF on (0, 1]: avoid log(0).
  const double u = 1.0 - uniform();
  return -mean * std::log(u);
}

int Rng::exponential_count(double mean) {
  OMIG_REQUIRE(mean >= 1.0, "a move-block needs at least one call on average");
  const double x = exponential(mean);
  const int n = static_cast<int>(std::lround(x));
  return n < 1 ? 1 : n;
}

}  // namespace omig::sim
