// Readiness backend for the event loop.
//
// The loop itself (event_loop.hpp) is backend-agnostic: it tracks which
// coroutine waits on which fd and in which direction, and asks a Poller
// to block until something happens. Two backends implement the
// interface:
//
//  * epoll   — always available, the default. Level-triggered with
//              per-fd interest updated as waiters come and go.
//  * io_uring — compiled in when <linux/io_uring.h> is present at
//              configure time (OMIG_HAVE_IO_URING) and selected at
//              runtime only if io_uring_setup() actually works — the
//              syscall is often blocked by seccomp in containers, in
//              which case construction falls back to epoll. Built on
//              raw syscalls (no liburing dependency): single-shot
//              IORING_OP_POLL_ADD per armed direction, an eventfd for
//              cross-thread wakeups, IORING_OP_TIMEOUT for the block
//              timeout.
//
// Both backends speak the same readiness contract: `update` declares
// the directions the loop currently cares about for an fd (read, write,
// both, or none), and `wait` reports fds that became ready. Error/hangup
// conditions are reported as ready in every armed direction so the
// waiter wakes up and observes the failure from the actual read/write
// call — the loop never interprets errors itself.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

namespace omig::net {

/// Which backend to construct. `Auto` prefers io_uring when it is both
/// compiled in and permitted by the kernel/sandbox, else epoll.
enum class PollBackend : std::uint8_t { Auto, Epoll, IoUring };

/// One readiness report from Poller::wait.
struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
};

class Poller {
public:
  virtual ~Poller() = default;

  /// Backend name for logs/metrics ("epoll" or "io_uring").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Declares interest in `fd`: wake when readable (`read`) and/or
  /// writable (`write`). Both false removes the fd entirely. Idempotent.
  virtual void update(int fd, bool read, bool write) = 0;

  /// Blocks up to `timeout` (negative = forever, zero = poll) and
  /// appends readiness reports to `out`. Returns the number appended.
  /// Spurious wakeups (empty `out`) are allowed — e.g. a cross-thread
  /// `wake()`.
  virtual int wait(std::chrono::milliseconds timeout,
                   std::vector<PollerEvent>& out) = 0;

  /// Thread-safe: interrupts a concurrent `wait`. Used by the loop's
  /// cross-thread post path.
  virtual void wake() = 0;
};

/// Builds the requested backend. `Auto` and `IoUring` fall back to
/// epoll when io_uring is unavailable (not compiled in, or the setup
/// syscall is rejected at runtime); epoll construction never fails.
std::unique_ptr<Poller> make_poller(PollBackend kind = PollBackend::Auto);

/// True when the io_uring backend was compiled in AND the kernel
/// accepts io_uring_setup (probed once, result cached).
bool io_uring_available();

}  // namespace omig::net
