// Message latency model.
//
// Paper model (Section 4.1): the network runs well below saturation, object
// traffic is a small share of total load, and location mechanisms are
// normalised away — so one one-way message takes an exponentially
// distributed time with mean 1 regardless of the endpoints. We additionally
// support a hop-scaled mode for the topology ablation.
#pragma once

#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace omig::net {

/// How the hop count between endpoints affects the message duration.
enum class LatencyMode {
  Uniform,    ///< paper default: exp(mean) for any remote pair
  HopScaled,  ///< exp(mean × hops): each hop adds an exponential stage
  Fixed,      ///< deterministic `mean` per remote message (analytic tests)
};

/// Samples one-way message durations.
class LatencyModel {
public:
  /// `mean` is the mean one-way duration between adjacent nodes (paper: 1).
  LatencyModel(const Topology& topology, LatencyMode mode, double mean = 1.0);

  /// Duration of one message from `from` to `to`; 0 if local.
  [[nodiscard]] sim::SimTime sample(sim::Rng& rng, std::size_t from,
                                    std::size_t to) const;

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] LatencyMode mode() const { return mode_; }
  [[nodiscard]] const Topology& topology() const { return *topology_; }

private:
  const Topology* topology_;
  LatencyMode mode_;
  double mean_;
};

}  // namespace omig::net
