// Single-threaded proactor event loop for the live runtime.
//
// One thread owns all I/O state: fd readiness interest, a hashed timer
// wheel, a ready queue of coroutines to resume, and the set of spawned
// coroutine tasks. Protocol code is written as straight-line C++20
// coroutines (the same `sim::Task` the simulator uses, so frames come
// from the thread-local FramePool) that `co_await` readiness, timers
// and events; the loop multiplexes thousands of them over one epoll or
// io_uring descriptor instead of one thread each.
//
// Threading contract — the core of the design:
//   * `post(fn)` and `stop()` are the ONLY thread-safe entry points
//     (plus `spawn`, which routes through post off-loop). Everything
//     else — timers, awaiters, cancel_fd, Event — is loop-thread only
//     and therefore needs no locks.
//   * The cross-thread seam is one mutex-guarded vector drained at the
//     top of every iteration plus an eventfd wakeup inside the poller;
//     both are TSan-clean by construction (scripts/check.sh covers the
//     EventLoop suites under -fsanitize=thread).
//   * Coroutines are never resumed from inside another coroutine's
//     frame or an event dispatch: every wakeup goes through
//     `schedule()` onto the ready queue and is resumed from the loop
//     body. That rules out reentrancy bugs (a resumed waiter tearing
//     down the connection whose event list is being walked).
//
// Timers are a hashed wheel (1 ms tick, 512 slots, absolute-deadline
// entries so far-out timers just ride around the wheel) — O(1) arm,
// O(slot) fire, no per-timer allocation beyond the callback.
//
// Lifecycle: awaiters hold no loop resources after resumption; the
// discipline for fds is cancel_fd() *before* close(). stop() cancels
// every fd waiter (they resume with `false` and unwind), drops pending
// timers and posts (dropping a posted send breaks its reply promise —
// exactly the transport's "lost in flight" signal), then destroys any
// still-suspended task frames.
#pragma once

#include <atomic>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/poller.hpp"
#include "sim/task.hpp"

namespace omig::net {

class EventLoop {
public:
  struct Options {
    PollBackend backend = PollBackend::Auto;
  };

  EventLoop() : EventLoop(Options{}) {}
  explicit EventLoop(Options opts);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs the loop on a background thread until stop(). Idempotent.
  void start();
  /// Runs the loop on the calling thread until stop() (tests mostly).
  void run();
  /// Thread-safe, idempotent. Wakes the loop, waits for it to finish
  /// its shutdown pass, and joins the start() thread if any.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool on_loop_thread() const {
    return std::this_thread::get_id() ==
           loop_thread_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const char* backend_name() const { return poller_->name(); }

  /// Thread-safe: runs `fn` on the loop thread in FIFO order. Posts
  /// made after stop() (or never drained before it) are dropped —
  /// captured promises break, which is the transport's loss signal.
  void post(std::function<void()> fn);

  /// Adopts and starts a coroutine task on the loop. Callable from any
  /// thread; the task body always executes on the loop thread. The
  /// loop owns the frame: finished tasks are reaped each iteration,
  /// still-suspended ones are destroyed at stop().
  void spawn(sim::Task task);

  // ---- loop-thread-only API ------------------------------------------

  /// Arms `fn` to run after `delay`. Returns a nonzero id for
  /// cancel_timer. During shutdown new timers are dropped (returns 0).
  std::uint64_t run_after(std::chrono::milliseconds delay,
                          std::function<void()> fn);
  /// True if the timer was still pending (the callback will not run).
  bool cancel_timer(std::uint64_t id);

  /// Resumes any waiter on `fd` with `false` and drops poller
  /// interest. Call before close(fd) whenever a waiter may be armed.
  void cancel_fd(int fd);

  /// Queues `h` for resumption from the loop body (never inline).
  void schedule(std::coroutine_handle<> h);

  class [[nodiscard]] SleepAwaiter {
  public:
    SleepAwaiter(EventLoop& loop, std::chrono::milliseconds delay)
        : loop_(loop), delay_(delay) {}
    bool await_ready() const noexcept { return delay_.count() <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      loop_.add_sleep(delay_, h);
    }
    void await_resume() const noexcept {}

  private:
    EventLoop& loop_;
    std::chrono::milliseconds delay_;
  };

  class [[nodiscard]] FdAwaiter {
  public:
    FdAwaiter(EventLoop& loop, int fd, bool write)
        : loop_(loop), fd_(fd), write_(write) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      loop_.add_fd_wait(fd_, write_, h, &ok_);
    }
    /// False: the wait was cancelled (cancel_fd or loop shutdown).
    [[nodiscard]] bool await_resume() const noexcept { return ok_; }

  private:
    EventLoop& loop_;
    int fd_;
    bool write_;
    bool ok_ = false;
  };

  /// `co_await loop.sleep_for(d)` — suspends via the timer wheel.
  [[nodiscard]] SleepAwaiter sleep_for(std::chrono::milliseconds delay) {
    return SleepAwaiter{*this, delay};
  }
  /// `co_await loop.readable(fd)` → bool (false = cancelled).
  [[nodiscard]] FdAwaiter readable(int fd) { return FdAwaiter{*this, fd, false}; }
  /// `co_await loop.writable(fd)` → bool (false = cancelled).
  [[nodiscard]] FdAwaiter writable(int fd) { return FdAwaiter{*this, fd, true}; }

  /// Tasks whose body threw (exceptions are swallowed and counted —
  /// protocol coroutines signal failure through state, not throws).
  [[nodiscard]] std::uint64_t tasks_failed() const {
    return tasks_failed_.load(std::memory_order_relaxed);
  }

private:
  friend class Event;

  struct Waiter {
    std::coroutine_handle<> handle{};
    bool* ok = nullptr;
  };
  struct FdWaits {
    Waiter read;
    Waiter write;
  };
  struct TimerEntry {
    std::uint64_t id = 0;
    std::uint64_t deadline_tick = 0;
    std::function<void()> fn;            // either fn …
    std::coroutine_handle<> handle{};    // … or a sleeping coroutine
  };

  static constexpr std::size_t kWheelSlots = 512;  // power of two
  static constexpr std::chrono::milliseconds kTick{1};

  void loop_body();
  void drain_posted();
  void advance_timers();
  void drain_ready();
  void reap_tasks();
  [[nodiscard]] std::chrono::milliseconds compute_timeout();
  void dispatch(const std::vector<PollerEvent>& events);
  void shutdown_on_loop();
  void spawn_on_loop(sim::Task task);
  void task_finished(std::uint64_t id);
  static sim::Task task_wrapper(EventLoop* loop, sim::Task inner,
                                std::uint64_t id);

  [[nodiscard]] std::uint64_t now_tick() const;
  void add_timer(TimerEntry entry, std::chrono::milliseconds delay);
  void add_sleep(std::chrono::milliseconds delay, std::coroutine_handle<> h);
  void add_fd_wait(int fd, bool write, std::coroutine_handle<> h, bool* ok);
  void sync_fd_interest(int fd, const FdWaits& waits);

  std::unique_ptr<Poller> poller_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> finished_{false};
  std::atomic<std::thread::id> loop_thread_{};
  std::thread thread_;
  std::mutex lifecycle_mutex_;  // start/stop idempotence

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;

  std::vector<std::coroutine_handle<>> ready_;
  std::unordered_map<int, FdWaits> fd_waits_;

  std::vector<std::vector<TimerEntry>> wheel_{kWheelSlots};
  std::unordered_set<std::uint64_t> live_timers_;
  std::uint64_t wheel_tick_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::chrono::steady_clock::time_point epoch_;

  std::unordered_map<std::uint64_t, sim::Task> tasks_;
  std::vector<std::uint64_t> finished_tasks_;
  std::uint64_t next_task_id_ = 1;
  std::atomic<std::uint64_t> tasks_failed_{0};
  bool shutting_down_ = false;

  std::vector<PollerEvent> events_;
};

/// Auto-reset, single-waiter wakeup flag for coroutines on one loop.
/// Loop-thread only (like everything per-connection). The writer
/// coroutine of a connection parks on it between bursts:
///
///   while (queue.empty()) { if (!co_await ev.wait()) co_return; }
///
/// set() while nobody waits latches (next wait completes immediately);
/// cancel() wakes the waiter with `false` without latching.
class Event {
public:
  explicit Event(EventLoop& loop) : loop_(&loop) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void set() {
    if (waiter_.handle) {
      *waiter_.ok = true;
      auto h = waiter_.handle;
      waiter_ = {};
      loop_->schedule(h);
    } else {
      set_ = true;
    }
  }

  void cancel() {
    if (waiter_.handle) {
      *waiter_.ok = false;
      auto h = waiter_.handle;
      waiter_ = {};
      loop_->schedule(h);
    }
  }

  class [[nodiscard]] Awaiter {
  public:
    explicit Awaiter(Event& ev) : ev_(ev) {}
    bool await_ready() noexcept {
      if (ev_.set_) {
        ev_.set_ = false;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      ev_.waiter_.handle = h;
      ev_.waiter_.ok = &ok_;
    }
    [[nodiscard]] bool await_resume() const noexcept { return ok_; }

  private:
    Event& ev_;
    bool ok_ = true;
  };

  [[nodiscard]] Awaiter wait() { return Awaiter{*this}; }

private:
  struct Waiter {
    std::coroutine_handle<> handle{};
    bool* ok = nullptr;
  };
  EventLoop* loop_;
  bool set_ = false;
  Waiter waiter_{};
};

}  // namespace omig::net
