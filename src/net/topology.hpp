// Network topologies.
//
// The paper's headline results assume a fully connected network; it reports
// that "we also performed simulations for other structures, but this had no
// effects on the results" (Section 4.1). We implement several topologies so
// this claim is checkable (`bench_ablation_topology`): the latency model can
// scale the message duration with the hop distance between nodes.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace omig::net {

/// Abstract network structure over `node_count` nodes; provides the hop
/// distance between two nodes (1 for neighbours, 0 for a node to itself).
class Topology {
public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::size_t node_count() const = 0;
  [[nodiscard]] virtual int hops(std::size_t from, std::size_t to) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Largest hop distance between any pair of nodes.
  [[nodiscard]] int diameter() const;
};

/// Every node one hop from every other node (the paper's default).
class FullMesh final : public Topology {
public:
  explicit FullMesh(std::size_t n);
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] int hops(std::size_t from, std::size_t to) const override;
  [[nodiscard]] std::string name() const override { return "full-mesh"; }

private:
  std::size_t n_;
};

/// Bidirectional ring.
class Ring final : public Topology {
public:
  explicit Ring(std::size_t n);
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] int hops(std::size_t from, std::size_t to) const override;
  [[nodiscard]] std::string name() const override { return "ring"; }

private:
  std::size_t n_;
};

/// Star: node 0 is the hub; leaves reach each other via the hub.
class Star final : public Topology {
public:
  explicit Star(std::size_t n);
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] int hops(std::size_t from, std::size_t to) const override;
  [[nodiscard]] std::string name() const override { return "star"; }

private:
  std::size_t n_;
};

/// 2-D grid (rows × cols), Manhattan distance.
class Grid final : public Topology {
public:
  Grid(std::size_t rows, std::size_t cols);
  [[nodiscard]] std::size_t node_count() const override {
    return rows_ * cols_;
  }
  [[nodiscard]] int hops(std::size_t from, std::size_t to) const override;
  [[nodiscard]] std::string name() const override { return "grid"; }

private:
  std::size_t rows_;
  std::size_t cols_;
};

/// Arbitrary undirected graph; hop distances precomputed with BFS.
class Graph final : public Topology {
public:
  /// `edges` are undirected (a, b) pairs over [0, n). The graph must be
  /// connected (checked).
  Graph(std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>&
                           edges);
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] int hops(std::size_t from, std::size_t to) const override;
  [[nodiscard]] std::string name() const override { return "graph"; }

private:
  std::size_t n_;
  std::vector<int> dist_;  ///< n × n distance matrix
};

/// Factory for the topology kinds used by benchmarks.
enum class TopologyKind { FullMesh, Ring, Star, Grid };

std::unique_ptr<Topology> make_topology(TopologyKind kind, std::size_t nodes);

}  // namespace omig::net
