// Backend selection: io_uring when compiled in and permitted by the
// kernel, epoll otherwise. The runtime probe matters in practice —
// io_uring_setup(2) is a common seccomp-denylist entry in container
// sandboxes, so "compiled with the header" never implies "usable".
#include "net/poller.hpp"

namespace omig::net {

// Defined in poller_epoll.cpp / poller_uring.cpp.
std::unique_ptr<Poller> make_epoll_poller();
std::unique_ptr<Poller> make_uring_poller();
bool probe_io_uring();

bool io_uring_available() {
  static const bool available = probe_io_uring();
  return available;
}

std::unique_ptr<Poller> make_poller(PollBackend kind) {
  if (kind != PollBackend::Epoll && io_uring_available()) {
    if (auto p = make_uring_poller()) return p;
  }
  return make_epoll_poller();
}

}  // namespace omig::net
