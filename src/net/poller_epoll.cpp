// epoll(7) readiness backend — the default, always available.
//
// Level-triggered: the loop re-arms interest as waiters come and go, so
// there is no edge-trigger starvation to reason about, and a wake()
// eventfd written before epoll_wait still registers (the counter stays
// nonzero until drained here).
#include "net/poller.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include "util/assert.hpp"

namespace omig::net {
namespace {

class EpollPoller final : public Poller {
public:
  EpollPoller() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    OMIG_ASSERT(epfd_ >= 0);
    wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    OMIG_ASSERT(wakefd_ >= 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakefd_;
    [[maybe_unused]] int rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev);
    OMIG_ASSERT(rc == 0);
  }

  ~EpollPoller() override {
    ::close(wakefd_);
    ::close(epfd_);
  }

  [[nodiscard]] const char* name() const override { return "epoll"; }

  void update(int fd, bool read, bool write) override {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (!read && !write) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
      return;
    }
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0) return;
    if (errno == ENOENT) ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }

  int wait(std::chrono::milliseconds timeout,
           std::vector<PollerEvent>& out) override {
    std::array<epoll_event, 128> evs{};
    int ms = timeout.count() < 0 ? -1 : static_cast<int>(timeout.count());
    int n = ::epoll_wait(epfd_, evs.data(), static_cast<int>(evs.size()), ms);
    if (n <= 0) return 0;  // timeout or EINTR: spurious wakeup is fine
    int reported = 0;
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = evs[static_cast<std::size_t>(i)];
      if (ev.data.fd == wakefd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(wakefd_, &drain, sizeof drain);
        continue;
      }
      // EPOLLERR/EPOLLHUP wake every armed direction: the waiter's own
      // read()/write() call observes and classifies the failure.
      bool broken = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(PollerEvent{ev.data.fd,
                                (ev.events & EPOLLIN) != 0 || broken,
                                (ev.events & EPOLLOUT) != 0 || broken});
      ++reported;
    }
    return reported;
  }

  void wake() override {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(wakefd_, &one, sizeof one);
  }

private:
  int epfd_ = -1;
  int wakefd_ = -1;
};

}  // namespace

std::unique_ptr<Poller> make_epoll_poller() {
  return std::make_unique<EpollPoller>();
}

}  // namespace omig::net
