#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/assert.hpp"

namespace omig::net {

int Topology::diameter() const {
  int d = 0;
  for (std::size_t a = 0; a < node_count(); ++a) {
    for (std::size_t b = 0; b < node_count(); ++b) {
      d = std::max(d, hops(a, b));
    }
  }
  return d;
}

FullMesh::FullMesh(std::size_t n) : n_{n} {
  OMIG_REQUIRE(n >= 1, "need at least one node");
}

int FullMesh::hops(std::size_t from, std::size_t to) const {
  OMIG_REQUIRE(from < n_ && to < n_, "node index out of range");
  return from == to ? 0 : 1;
}

Ring::Ring(std::size_t n) : n_{n} {
  OMIG_REQUIRE(n >= 1, "need at least one node");
}

int Ring::hops(std::size_t from, std::size_t to) const {
  OMIG_REQUIRE(from < n_ && to < n_, "node index out of range");
  const std::size_t d = from > to ? from - to : to - from;
  return static_cast<int>(std::min(d, n_ - d));
}

Star::Star(std::size_t n) : n_{n} {
  OMIG_REQUIRE(n >= 1, "need at least one node");
}

int Star::hops(std::size_t from, std::size_t to) const {
  OMIG_REQUIRE(from < n_ && to < n_, "node index out of range");
  if (from == to) return 0;
  if (from == 0 || to == 0) return 1;
  return 2;
}

Grid::Grid(std::size_t rows, std::size_t cols) : rows_{rows}, cols_{cols} {
  OMIG_REQUIRE(rows >= 1 && cols >= 1, "grid must be non-empty");
}

int Grid::hops(std::size_t from, std::size_t to) const {
  OMIG_REQUIRE(from < node_count() && to < node_count(),
               "node index out of range");
  const auto r1 = static_cast<long>(from / cols_);
  const auto c1 = static_cast<long>(from % cols_);
  const auto r2 = static_cast<long>(to / cols_);
  const auto c2 = static_cast<long>(to % cols_);
  return static_cast<int>(std::labs(r1 - r2) + std::labs(c1 - c2));
}

Graph::Graph(std::size_t n,
             const std::vector<std::pair<std::size_t, std::size_t>>& edges)
    : n_{n}, dist_(n * n, -1) {
  OMIG_REQUIRE(n >= 1, "need at least one node");
  std::vector<std::vector<std::size_t>> adj(n);
  for (auto [a, b] : edges) {
    OMIG_REQUIRE(a < n && b < n, "edge endpoint out of range");
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (std::size_t s = 0; s < n; ++s) {
    auto* row = &dist_[s * n];
    row[s] = 0;
    std::queue<std::size_t> q;
    q.push(s);
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (std::size_t v : adj[u]) {
        if (row[v] < 0) {
          row[v] = row[u] + 1;
          q.push(v);
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      OMIG_REQUIRE(row[v] >= 0, "graph topology must be connected");
    }
  }
}

int Graph::hops(std::size_t from, std::size_t to) const {
  OMIG_REQUIRE(from < n_ && to < n_, "node index out of range");
  return dist_[from * n_ + to];
}

std::unique_ptr<Topology> make_topology(TopologyKind kind, std::size_t nodes) {
  switch (kind) {
    case TopologyKind::FullMesh:
      return std::make_unique<FullMesh>(nodes);
    case TopologyKind::Ring:
      return std::make_unique<Ring>(nodes);
    case TopologyKind::Star:
      return std::make_unique<Star>(nodes);
    case TopologyKind::Grid: {
      // Squarest grid with at least `nodes` cells; extra cells are unused by
      // callers that only index [0, nodes).
      auto rows = static_cast<std::size_t>(
          std::floor(std::sqrt(static_cast<double>(nodes))));
      rows = std::max<std::size_t>(rows, 1);
      const std::size_t cols = (nodes + rows - 1) / rows;
      return std::make_unique<Grid>(rows, cols);
    }
  }
  OMIG_REQUIRE(false, "unknown topology kind");
  return nullptr;
}

}  // namespace omig::net
