#include "net/event_loop.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::net {

EventLoop::EventLoop(Options opts)
    : poller_(make_poller(opts.backend)),
      epoch_(std::chrono::steady_clock::now()) {}

EventLoop::~EventLoop() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::start() {
  std::lock_guard lock{lifecycle_mutex_};
  if (running_.load(std::memory_order_acquire) || thread_.joinable() ||
      finished_.load(std::memory_order_acquire)) {
    return;  // loops are single-use: once stopped, build a new one
  }
  thread_ = std::thread([this] { run(); });
  // Wait until the loop thread is live so post()/spawn() callers never
  // race a not-yet-started loop into the shutdown drop path.
  while (!running_.load(std::memory_order_acquire) &&
         !stop_requested_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_body();
  shutdown_on_loop();
  finished_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  loop_thread_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  poller_->wake();
  if (on_loop_thread()) return;  // loop exits after this iteration
  std::lock_guard lock{lifecycle_mutex_};
  if (thread_.joinable()) thread_.join();
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock{post_mutex_};
    posted_.push_back(std::move(fn));
  }
  poller_->wake();
}

void EventLoop::spawn(sim::Task task) {
  if (on_loop_thread()) {
    spawn_on_loop(std::move(task));
    return;
  }
  // std::function requires a copyable callable; shuttle the move-only
  // task through a shared_ptr.
  auto boxed = std::make_shared<sim::Task>(std::move(task));
  post([this, boxed] { spawn_on_loop(std::move(*boxed)); });
}

void EventLoop::spawn_on_loop(sim::Task task) {
  OMIG_ASSERT(on_loop_thread());
  if (shutting_down_ || !task.valid()) return;
  std::uint64_t id = next_task_id_++;
  auto [it, inserted] =
      tasks_.emplace(id, task_wrapper(this, std::move(task), id));
  OMIG_ASSERT(inserted);
  schedule(it->second.handle());
}

sim::Task EventLoop::task_wrapper(EventLoop* loop, sim::Task inner,
                                  std::uint64_t id) {
  try {
    co_await inner;
  } catch (...) {
    loop->tasks_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  loop->task_finished(id);
}

void EventLoop::task_finished(std::uint64_t id) {
  finished_tasks_.push_back(id);
}

void EventLoop::schedule(std::coroutine_handle<> h) {
  OMIG_ASSERT(on_loop_thread());
  OMIG_ASSERT(h);
  ready_.push_back(h);
}

// ---- timers -----------------------------------------------------------

std::uint64_t EventLoop::now_tick() const {
  return static_cast<std::uint64_t>(
      (std::chrono::steady_clock::now() - epoch_) / kTick);
}

void EventLoop::add_timer(TimerEntry entry, std::chrono::milliseconds delay) {
  OMIG_ASSERT(on_loop_thread());
  std::uint64_t ticks =
      delay.count() <= 0 ? 0 : static_cast<std::uint64_t>(delay / kTick);
  entry.deadline_tick = now_tick() + ticks;
  // A deadline the wheel cursor already passed would never fire; clamp
  // onto the cursor so it goes off on the next advance.
  entry.deadline_tick = std::max(entry.deadline_tick, wheel_tick_);
  live_timers_.insert(entry.id);
  wheel_[entry.deadline_tick % kWheelSlots].push_back(std::move(entry));
}

std::uint64_t EventLoop::run_after(std::chrono::milliseconds delay,
                                   std::function<void()> fn) {
  if (shutting_down_) return 0;
  TimerEntry entry;
  entry.id = next_timer_id_++;
  entry.fn = std::move(fn);
  std::uint64_t id = entry.id;
  add_timer(std::move(entry), delay);
  return id;
}

bool EventLoop::cancel_timer(std::uint64_t id) {
  OMIG_ASSERT(on_loop_thread());
  return live_timers_.erase(id) > 0;  // fire-time check skips the entry
}

void EventLoop::add_sleep(std::chrono::milliseconds delay,
                          std::coroutine_handle<> h) {
  TimerEntry entry;
  entry.id = next_timer_id_++;
  entry.handle = h;
  add_timer(std::move(entry), delay);
}

void EventLoop::advance_timers() {
  std::uint64_t now = now_tick();
  if (live_timers_.empty()) {
    // Nothing armed: snap the cursor so a long idle block doesn't walk
    // every intervening tick.
    wheel_tick_ = std::max(wheel_tick_, now + 1);
    return;
  }
  std::vector<TimerEntry> due;
  while (wheel_tick_ <= now) {
    auto& slot = wheel_[wheel_tick_ % kWheelSlots];
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].deadline_tick <= wheel_tick_) {
        due.push_back(std::move(slot[i]));
        slot[i] = std::move(slot.back());
        slot.pop_back();
      } else {
        ++i;
      }
    }
    ++wheel_tick_;
  }
  // Fire after the slot scan: callbacks may arm new timers into the
  // very slots being walked.
  for (TimerEntry& entry : due) {
    if (live_timers_.erase(entry.id) == 0) continue;  // cancelled
    if (entry.handle) {
      schedule(entry.handle);
    } else if (entry.fn) {
      entry.fn();
    }
  }
}

std::chrono::milliseconds EventLoop::compute_timeout() {
  {
    std::lock_guard lock{post_mutex_};
    if (!posted_.empty()) return std::chrono::milliseconds{0};
  }
  if (!ready_.empty()) return std::chrono::milliseconds{0};
  if (live_timers_.empty()) return std::chrono::milliseconds{-1};
  // First non-empty slot bounds the next deadline from below; an entry
  // still riding around the wheel just causes a spurious wakeup.
  for (std::uint64_t d = 0; d < kWheelSlots; ++d) {
    if (!wheel_[(wheel_tick_ + d) % kWheelSlots].empty()) {
      return std::chrono::milliseconds{static_cast<long>(d) + 1};
    }
  }
  return std::chrono::milliseconds{kWheelSlots};
}

// ---- fd readiness -----------------------------------------------------

void EventLoop::add_fd_wait(int fd, bool write, std::coroutine_handle<> h,
                            bool* ok) {
  OMIG_ASSERT(on_loop_thread());
  OMIG_ASSERT(fd >= 0);
  FdWaits& waits = fd_waits_[fd];
  Waiter& slot = write ? waits.write : waits.read;
  OMIG_ASSERT(!slot.handle);  // one waiter per direction
  slot.handle = h;
  slot.ok = ok;
  sync_fd_interest(fd, waits);
}

void EventLoop::sync_fd_interest(int fd, const FdWaits& waits) {
  poller_->update(fd, static_cast<bool>(waits.read.handle),
                  static_cast<bool>(waits.write.handle));
}

void EventLoop::cancel_fd(int fd) {
  OMIG_ASSERT(on_loop_thread());
  auto it = fd_waits_.find(fd);
  if (it == fd_waits_.end()) return;
  for (Waiter* w : {&it->second.read, &it->second.write}) {
    if (w->handle) {
      *w->ok = false;
      schedule(w->handle);
      *w = {};
    }
  }
  fd_waits_.erase(it);
  poller_->update(fd, false, false);
}

void EventLoop::dispatch(const std::vector<PollerEvent>& events) {
  for (const PollerEvent& ev : events) {
    auto it = fd_waits_.find(ev.fd);
    if (it == fd_waits_.end()) continue;  // interest dropped meanwhile
    FdWaits& waits = it->second;
    if (ev.readable && waits.read.handle) {
      *waits.read.ok = true;
      schedule(waits.read.handle);
      waits.read = {};
    }
    if (ev.writable && waits.write.handle) {
      *waits.write.ok = true;
      schedule(waits.write.handle);
      waits.write = {};
    }
    if (!waits.read.handle && !waits.write.handle) {
      fd_waits_.erase(it);
      poller_->update(ev.fd, false, false);
    } else {
      sync_fd_interest(ev.fd, waits);
    }
  }
}

// ---- loop body --------------------------------------------------------

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock{post_mutex_};
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::drain_ready() {
  std::vector<std::coroutine_handle<>> batch;
  while (!ready_.empty()) {
    batch.clear();
    batch.swap(ready_);  // resumptions may schedule more
    for (std::coroutine_handle<> h : batch) h.resume();
  }
}

void EventLoop::reap_tasks() {
  for (std::uint64_t id : finished_tasks_) tasks_.erase(id);
  finished_tasks_.clear();
}

void EventLoop::loop_body() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    drain_posted();
    advance_timers();
    drain_ready();
    reap_tasks();
    if (stop_requested_.load(std::memory_order_acquire)) break;
    events_.clear();
    poller_->wait(compute_timeout(), events_);
    dispatch(events_);
  }
}

void EventLoop::shutdown_on_loop() {
  shutting_down_ = true;
  // Posts that never ran are dropped: captured reply promises break,
  // which is the transport's "lost in flight" signal.
  {
    std::lock_guard lock{post_mutex_};
    posted_.clear();
  }
  // Drop timers (callbacks and sleepers; sleeping coroutine frames are
  // destroyed with their task below).
  live_timers_.clear();
  for (auto& slot : wheel_) slot.clear();
  // Cancel every fd wait and let the waiters unwind: readers/writers
  // observe `false`, fail their connection, and finish.
  std::vector<int> fds;
  fds.reserve(fd_waits_.size());
  for (const auto& [fd, waits] : fd_waits_) fds.push_back(fd);
  for (int fd : fds) cancel_fd(fd);
  for (int round = 0; round < 8 && !ready_.empty(); ++round) {
    drain_ready();
    reap_tasks();
    fds.clear();
    for (const auto& [fd, waits] : fd_waits_) fds.push_back(fd);
    for (int fd : fds) cancel_fd(fd);
  }
  reap_tasks();
  // Whatever is still suspended (e.g. parked on an Event nobody will
  // ever set) is destroyed outright.
  tasks_.clear();
  fd_waits_.clear();
  ready_.clear();
}

}  // namespace omig::net
