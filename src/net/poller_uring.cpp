// io_uring readiness backend — raw syscalls, no liburing.
//
// Compiled only when <linux/io_uring.h> was found at configure time
// (OMIG_HAVE_IO_URING); otherwise this TU provides stubs so
// make_poller() can fall back to epoll unconditionally. Even when
// compiled in, io_uring_setup(2) is probed at runtime: container
// seccomp policies commonly reject it (ENOSYS/EPERM), and the probe
// result decides whether PollBackend::Auto picks this backend at all.
//
// Shape: one single-shot IORING_OP_POLL_ADD per fd covering the armed
// directions. Interest changes cancel the in-flight poll
// (IORING_OP_POLL_REMOVE keyed by a per-arm token in user_data — stale
// completions are dropped by token mismatch) and arm a fresh one. A
// nonblocking eventfd is kept permanently poll-armed for cross-thread
// wake(). The blocking wait uses IORING_ENTER_EXT_ARG timeouts
// (IORING_FEAT_EXT_ARG is required; absent → constructor fails →
// epoll fallback).
#include "net/poller.hpp"

#ifndef OMIG_HAVE_IO_URING

namespace omig::net {
std::unique_ptr<Poller> make_uring_poller() { return nullptr; }
bool probe_io_uring() { return false; }
}  // namespace omig::net

#else  // OMIG_HAVE_IO_URING

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <new>
#include <unordered_map>

namespace omig::net {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

// Mapped ring indices are shared with the kernel; access them with the
// documented acquire/release protocol via atomic_ref.
std::uint32_t load_acquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>{*p}.load(std::memory_order_acquire);
}
void store_release(unsigned* p, std::uint32_t v) {
  std::atomic_ref<unsigned>{*p}.store(v, std::memory_order_release);
}

constexpr std::uint64_t kWakeToken = ~std::uint64_t{0};

class UringPoller final : public Poller {
public:
  UringPoller() {
    io_uring_params params{};
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = 4096;
    ring_fd_ = sys_io_uring_setup(1024, &params);
    if (ring_fd_ < 0) return;
    if ((params.features & IORING_FEAT_EXT_ARG) == 0 ||
        (params.features & IORING_FEAT_NODROP) == 0) {
      ::close(ring_fd_);
      ring_fd_ = -1;
      return;
    }

    sq_ring_bytes_ =
        params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
    std::size_t cq_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_bytes > sq_ring_bytes_) sq_ring_bytes_ = cq_bytes;

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) { sq_ring_ = nullptr; fail(); return; }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
      cq_ring_bytes_ = 0;  // shared mapping, unmapped once
    } else {
      cq_ring_bytes_ = cq_bytes;
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) { cq_ring_bytes_ = 0; fail(); return; }
    }
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == static_cast<void*>(MAP_FAILED)) {
      sqes_ = nullptr;
      fail();
      return;
    }

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    sq_entries_ = params.sq_entries;
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);

    wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakefd_ < 0) { fail(); return; }
    ok_ = true;
    arm_wakefd();
  }

  ~UringPoller() override {
    if (wakefd_ >= 0) ::close(wakefd_);
    if (sqes_ != nullptr) ::munmap(sqes_, sqe_bytes_);
    if (cq_ring_bytes_ != 0) ::munmap(cq_ring_, cq_ring_bytes_);
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  /// False when setup failed; the caller falls back to epoll.
  [[nodiscard]] bool ok() const { return ok_; }

  [[nodiscard]] const char* name() const override { return "io_uring"; }

  void update(int fd, bool read, bool write) override {
    Armed& armed = armed_[fd];
    if (armed.token != 0 && armed.read == read && armed.write == write) return;
    if (armed.token != 0) {
      io_uring_sqe* sqe = get_sqe();
      sqe->opcode = IORING_OP_POLL_REMOVE;
      sqe->fd = -1;
      sqe->addr = armed.token;       // match the in-flight poll by token
      sqe->user_data = kWakeToken - 1;  // cancellation result: ignored
      armed.token = 0;
    }
    if (!read && !write) {
      armed_.erase(fd);
      return;
    }
    armed.read = read;
    armed.write = write;
    armed.token = next_token_;
    next_token_ += 2;  // even tokens; odd/sentinel values stay distinct
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    sqe->poll32_events = (read ? POLLIN : 0u) | (write ? POLLOUT : 0u);
    sqe->user_data = armed.token;
    token_fd_[armed.token] = fd;
  }

  int wait(std::chrono::milliseconds timeout,
           std::vector<PollerEvent>& out) override {
    __kernel_timespec ts{};
    io_uring_getevents_arg arg{};
    if (timeout.count() >= 0) {
      ts.tv_sec = timeout.count() / 1000;
      ts.tv_nsec = (timeout.count() % 1000) * 1'000'000;
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
    }
    unsigned to_submit = pending_sqes_;
    int rc = sys_io_uring_enter(ring_fd_, to_submit, /*min_complete=*/1,
                                IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                                &arg, sizeof arg);
    if (rc >= 0) {
      pending_sqes_ -= std::min<unsigned>(pending_sqes_,
                                          static_cast<unsigned>(rc));
    } else if (errno != ETIME && errno != EINTR) {
      return 0;
    }
    return reap(out);
  }

  void wake() override {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(wakefd_, &one, sizeof one);
  }

private:
  struct Armed {
    std::uint64_t token = 0;
    bool read = false;
    bool write = false;
  };

  // Construction failure: whatever mapped so far stays recorded in the
  // members and is released by the destructor; ok() reports the state.
  void fail() { ok_ = false; }

  void arm_wakefd() {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = wakefd_;
    sqe->poll32_events = POLLIN;
    sqe->user_data = kWakeToken;
  }

  io_uring_sqe* get_sqe() {
    // Loop thread only. Flush inline if the SQ is full.
    if (pending_sqes_ == sq_entries_) flush();
    unsigned tail = *sq_tail_;  // we are the only producer
    unsigned idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof *sqe);
    sq_array_[idx] = idx;
    store_release(sq_tail_, tail + 1);
    ++pending_sqes_;
    return sqe;
  }

  void flush() {
    while (pending_sqes_ > 0) {
      int rc = sys_io_uring_enter(ring_fd_, pending_sqes_, 0, 0, nullptr, 0);
      if (rc < 0) break;
      pending_sqes_ -= static_cast<unsigned>(rc);
    }
  }

  int reap(std::vector<PollerEvent>& out) {
    int reported = 0;
    unsigned head = *cq_head_;
    while (head != load_acquire(cq_tail_)) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      std::uint64_t token = cqe.user_data;
      int res = cqe.res;
      ++head;
      if (token == kWakeToken) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(wakefd_, &drain, sizeof drain);
        arm_wakefd();
        continue;
      }
      auto it = token_fd_.find(token);
      if (it == token_fd_.end()) continue;  // cancelled/stale arm
      int fd = it->second;
      token_fd_.erase(it);
      auto ait = armed_.find(fd);
      if (ait == armed_.end() || ait->second.token != token) continue;
      bool want_r = ait->second.read;
      bool want_w = ait->second.write;
      armed_.erase(ait);  // single-shot: the loop re-arms what remains
      if (res < 0) {
        // Poll failure (e.g. fd closed): wake every armed direction so
        // the waiter observes the error from its own syscall.
        out.push_back(PollerEvent{fd, want_r, want_w});
      } else {
        auto mask = static_cast<unsigned>(res);
        bool broken = (mask & (POLLERR | POLLHUP)) != 0;
        out.push_back(PollerEvent{fd,
                                  (mask & POLLIN) != 0 || (broken && want_r),
                                  (mask & POLLOUT) != 0 || (broken && want_w)});
      }
      ++reported;
    }
    store_release(cq_head_, head);
    return reported;
  }

  bool ok_ = false;
  int ring_fd_ = -1;
  int wakefd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqe_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned sq_entries_ = 0;
  unsigned pending_sqes_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  std::uint64_t next_token_ = 2;
  std::unordered_map<int, Armed> armed_;
  std::unordered_map<std::uint64_t, int> token_fd_;
};

}  // namespace

std::unique_ptr<Poller> make_uring_poller() {
  auto p = std::make_unique<UringPoller>();
  if (!p->ok()) return nullptr;
  return p;
}

bool probe_io_uring() {
  io_uring_params params{};
  int fd = sys_io_uring_setup(4, &params);
  if (fd < 0) return false;
  bool usable = (params.features & IORING_FEAT_EXT_ARG) != 0 &&
                (params.features & IORING_FEAT_NODROP) != 0;
  ::close(fd);
  return usable;
}

}  // namespace omig::net

#endif  // OMIG_HAVE_IO_URING
