#include "net/latency.hpp"

#include "util/assert.hpp"

namespace omig::net {

LatencyModel::LatencyModel(const Topology& topology, LatencyMode mode,
                           double mean)
    : topology_{&topology}, mode_{mode}, mean_{mean} {
  OMIG_REQUIRE(mean > 0.0, "mean message duration must be positive");
}

sim::SimTime LatencyModel::sample(sim::Rng& rng, std::size_t from,
                                  std::size_t to) const {
  const int h = topology_->hops(from, to);
  if (h == 0) return 0.0;  // local: ~4 orders of magnitude below remote
  switch (mode_) {
    case LatencyMode::Uniform:
      return rng.exponential(mean_);
    case LatencyMode::HopScaled: {
      sim::SimTime total = 0.0;
      for (int i = 0; i < h; ++i) total += rng.exponential(mean_);
      return total;
    }
    case LatencyMode::Fixed:
      return mean_;
  }
  OMIG_REQUIRE(false, "unknown latency mode");
  return 0.0;
}

}  // namespace omig::net
