// Figure 8: mean communication time per call vs the mean distance t_m
// between two usages, for no-migration / conventional migration / transient
// placement (parameters of Figure 9: D=3, C=3, S1=3, M=6, N~exp(8)).
#include "bench_common.hpp"

#include "core/plot.hpp"

using namespace omig;
using migration::PolicyKind;

int main() {
  bench::print_header(
      "Figure 8 — Increasing the usage frequency",
      "D=3 C=3 S1=3 S2=0 M=6 N~exp(8) t_i~exp(1); x = mean t_m");

  std::vector<core::SweepVariant> variants{
      {"without-migration",
       [](double x) { return core::fig8_config(x, PolicyKind::Sedentary); }},
      {"migration",
       [](double x) {
         return core::fig8_config(x, PolicyKind::Conventional);
       }},
      {"transient-placement",
       [](double x) { return core::fig8_config(x, PolicyKind::Placement); }},
  };

  const std::vector<double> xs{1,  2,  4,  6,  8,  10, 15, 20,
                               30, 40, 50, 60, 70, 80, 90, 100};
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("mean-distance-t_m", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text() << '\n'
            << core::plot_sweep(variants, points,
                                core::Metric::TotalPerCall)
            << "\ncsv:\n" << table.to_csv();
  return 0;
}
