// Figure 12: mean communication time per call vs number of clients (hot
// spot; parameters of Figure 13: D=27, S1=3, M=6, N~exp(8), t_m~exp(30)).
// Paper shape: migration crosses the sedentary line at ~6 clients and grows
// linearly; placement grows sublinearly and crosses at ~20.
#include "bench_common.hpp"

#include "core/plot.hpp"

using namespace omig;
using migration::PolicyKind;

int main() {
  bench::print_header(
      "Figure 12 — Increasing the number of clients",
      "D=27 S1=3 S2=0 M=6 N~exp(8) t_i~exp(1) t_m~exp(30); x = #clients");

  std::vector<core::SweepVariant> variants{
      {"without-migration",
       [](double x) {
         return core::fig12_config(static_cast<int>(x),
                                   PolicyKind::Sedentary);
       }},
      {"migration",
       [](double x) {
         return core::fig12_config(static_cast<int>(x),
                                   PolicyKind::Conventional);
       }},
      {"transient-placement",
       [](double x) {
         return core::fig12_config(static_cast<int>(x),
                                   PolicyKind::Placement);
       }},
  };

  const auto xs = bench::client_axis(25, bench::env_int("OMIG_POINTS", 13));
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("clients", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text() << '\n'
            << core::plot_sweep(variants, points,
                                core::Metric::TotalPerCall)
            << "\ncsv:\n" << table.to_csv();
  return 0;
}
