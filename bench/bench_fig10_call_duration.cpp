// Figure 10: the invocation-duration component of Figure 8 (same runs,
// different metric): mean duration of one call vs mean distance t_m.
#include "bench_common.hpp"

#include "core/plot.hpp"

using namespace omig;
using migration::PolicyKind;

int main() {
  bench::print_header(
      "Figure 10 — Duration of invocations",
      "D=3 C=3 S1=3 S2=0 M=6 N~exp(8) t_i~exp(1); x = mean t_m");

  std::vector<core::SweepVariant> variants{
      {"without-migration",
       [](double x) { return core::fig8_config(x, PolicyKind::Sedentary); }},
      {"migration",
       [](double x) {
         return core::fig8_config(x, PolicyKind::Conventional);
       }},
      {"transient-placement",
       [](double x) { return core::fig8_config(x, PolicyKind::Placement); }},
  };

  const std::vector<double> xs{1,  2,  4,  6,  8,  10, 15, 20,
                               30, 40, 50, 60, 70, 80, 90, 100};
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("mean-distance-t_m", variants, points,
                                 core::Metric::CallDuration);
  std::cout << core::to_string(core::Metric::CallDuration) << "\n\n"
            << table.to_text() << '\n'
            << core::plot_sweep(variants, points,
                                core::Metric::CallDuration)
            << "\ncsv:\n" << table.to_csv();
  return 0;
}
