// Ablation: Section 4.2.2 claims the placement break-even point grows
// over-proportionally in N/M. We sweep the hot-spot experiment (Figure 13
// parameters) for several N/M ratios and report where each policy crosses
// the sedentary baseline.
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(int clients, double mean_calls, double m,
                           PolicyKind policy) {
  auto c = core::fig12_config(clients, policy);
  c.workload.mean_calls = mean_calls;
  c.workload.migration_duration = m;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — break-even vs N/M ratio (Section 4.2.2 claim)",
      "Figure-13 parameters, varying N (mean calls) at fixed M=6");

  const std::vector<double> mean_calls{8.0, 12.0, 16.0, 24.0};
  const auto xs = bench::client_axis(25, bench::env_int("OMIG_POINTS", 9));

  for (const double n : mean_calls) {
    core::TextTable table{{"clients", "without-migration", "migration",
                           "transient-placement"}};
    for (const double x : xs) {
      const int c = static_cast<int>(x);
      std::vector<double> row;
      for (const auto policy :
           {PolicyKind::Sedentary, PolicyKind::Conventional,
            PolicyKind::Placement}) {
        row.push_back(
            core::run_experiment(cfg(c, n, 6.0, policy)).total_per_call);
      }
      table.add_numeric_row(x, row, 4);
    }
    std::cout << "\nN/M = " << n / 6.0 << " (N mean " << n << ", M 6):\n"
              << table.to_text();
  }
  std::cout << "\nExpectation: larger N/M pushes both break-even points "
               "right, the placement one much further (sublinear growth).\n";
  return 0;
}
