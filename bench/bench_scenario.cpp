// Scenario-pack throughput on the live runtime: each scenario in the zoo
// replays in process (threaded LiveSystem, no sockets) and reports issued
// ops/sec plus per-op p50/p99 latency as JSON;
// scripts/bench_baseline.sh --scenario merges the medians of 3 runs into
// BENCH_scenario.json.
//
// This measures the runtime protocol stack under each traffic *shape* —
// the simulator backend is the instrument for the paper's timing claims.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/families.hpp"
#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"
#include "scenario/live_driver.hpp"
#include "scenario/scenario.hpp"

namespace {

struct Row {
  std::string scenario;
  omig::scenario::LiveScenarioResult result;
  std::uint64_t op_p50_us = 0;
  std::uint64_t op_p99_us = 0;
};

Row run_one(const std::string& name) {
  using namespace omig;
  scenario::ScenarioOptions sopts;
  sopts.name = name;
  sopts.nodes = 4;
  sopts.sources = 8;
  sopts.objects = 48;
  const auto scen = scenario::make_scenario(sopts);

  runtime::LiveSystem::Options opts;
  opts.nodes = 4;
  runtime::LiveSystem sys{opts};
  runtime::register_demo_types(sys);
  sys.start();

  scenario::LiveScenarioOptions lopts;
  lopts.bursts_per_source = 200;
  lopts.threads = 4;
  lopts.seed = 1;

  Row row;
  row.scenario = name;
  row.result = scenario::run_live_scenario(sys, *scen, lopts);
  const obs::ScenarioMetrics metrics = obs::scenario_metrics(name);
  row.op_p50_us = metrics.op_us->quantile(0.50);
  row.op_p99_us = metrics.op_us->quantile(0.99);
  sys.stop();
  return row;
}

}  // namespace

int main() {
  std::printf("{\n  \"results\": [\n");
  bool first = true;
  for (const omig::scenario::ScenarioInfo& info :
       omig::scenario::list_scenarios()) {
    const Row row = run_one(info.name);
    if (row.result.failures != 0) {
      std::fprintf(stderr, "bench_scenario: %s had %llu failures\n",
                   info.name.c_str(),
                   static_cast<unsigned long long>(row.result.failures));
      return 1;
    }
    std::printf(
        "%s    {\"scenario\": \"%s\", \"issued_ops\": %llu, "
        "\"bursts\": %llu, \"moves\": %llu, \"visits\": %llu, "
        "\"wall_ms\": %.3f, \"ops_per_sec\": %.1f, "
        "\"op_p50_us\": %llu, \"op_p99_us\": %llu}",
        first ? "" : ",\n", row.scenario.c_str(),
        static_cast<unsigned long long>(row.result.ops),
        static_cast<unsigned long long>(row.result.bursts),
        static_cast<unsigned long long>(row.result.moves),
        static_cast<unsigned long long>(row.result.visits),
        row.result.wall_seconds * 1e3, row.result.ops_per_sec,
        static_cast<unsigned long long>(row.op_p50_us),
        static_cast<unsigned long long>(row.op_p99_us));
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
