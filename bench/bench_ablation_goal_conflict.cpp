// Ablation: conflicting *goals*, not just conflicting instances of one
// policy. Section 2.2: load-sharing, communication performance and
// availability "are not compatible in general". We mix placement clients
// (optimising communication) with load-sharing clients (optimising node
// load) on one shared server pool and sweep the mix.
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

int main() {
  bench::print_header(
      "Ablation — conflicting goals: communication vs load-sharing "
      "(Section 2.2)",
      "D=6 C=6 S1=3 M=6 N~exp(8) t_m~exp(10); x = clients pursuing "
      "load-sharing instead of placement");

  core::TextTable table{{"load-sharing clients", "mean comm-time/call",
                         "migrations", "max node load"}};
  for (int sharers = 0; sharers <= 6; ++sharers) {
    auto cfg = core::fig8_config(10.0, PolicyKind::Placement);
    cfg.workload.nodes = 6;
    cfg.workload.clients = 6;
    cfg.egoistic_clients = sharers;
    cfg.egoistic_policy = PolicyKind::LoadShare;
    const auto r = core::run_experiment(cfg);
    table.add_row({std::to_string(sharers),
                   core::format_double(r.total_per_call, 4),
                   std::to_string(r.migrations), "-"});
  }
  std::cout << table.to_text()
            << "\nExpectation: every client that swaps the communication "
               "goal for the load-sharing goal scatters the shared servers "
               "away from their callers — the system-wide communication "
               "metric degrades monotonically, even though each component "
               "is 'optimising'.\n";
  return 0;
}
