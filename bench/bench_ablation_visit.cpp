// Ablation: move() vs visit() (Section 2.3 — call-by-move vs call-by-visit).
// visit() migrates the object back when the block ends; under contention
// the return trips double the migration traffic, but they also restore the
// object for clients near its home. Not plotted in the paper.
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(double tm, PolicyKind policy, bool visit) {
  auto c = core::fig8_config(tm, policy);
  c.workload.use_visit = visit;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — move() vs visit() blocks",
      "Figure-9 parameters; x = mean t_m");

  std::vector<core::SweepVariant> variants{
      {"migration+move",
       [](double x) { return cfg(x, PolicyKind::Conventional, false); }},
      {"migration+visit",
       [](double x) { return cfg(x, PolicyKind::Conventional, true); }},
      {"placement+move",
       [](double x) { return cfg(x, PolicyKind::Placement, false); }},
      {"placement+visit",
       [](double x) { return cfg(x, PolicyKind::Placement, true); }},
  };

  const std::vector<double> xs{2, 5, 10, 20, 40, 70, 100};
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("mean-distance-t_m", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text()
            << "\nExpectation: visit() pays an extra (uncharged, background)"
               " return migration per block; its per-call costs stay close "
               "to move() at low concurrency and the next mover must wait "
               "for returning objects under contention.\n";
  return 0;
}
