// Ablation: the N > M sensibility rule (Section 4.1 — "a migration block
// is set up sensibly when N > M"). We sweep M at fixed N~exp(8) across the
// boundary: migration should beat the sedentary baseline while M < N and
// lose it as M grows past N.
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(double m, PolicyKind policy) {
  auto c = core::fig8_config(30.0, policy);
  c.workload.migration_duration = m;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — migration duration vs block length (N > M rule)",
      "Figure-9 parameters at t_m=30, N~exp(8); x = M");

  std::vector<core::SweepVariant> variants{
      {"without-migration",
       [](double x) { return cfg(x, PolicyKind::Sedentary); }},
      {"migration",
       [](double x) { return cfg(x, PolicyKind::Conventional); }},
      {"transient-placement",
       [](double x) { return cfg(x, PolicyKind::Placement); }},
  };

  const std::vector<double> xs{1, 2, 4, 6, 8, 10, 12, 16, 20, 24};
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("M", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text()
            << "\nExpectation: the sedentary baseline is flat; the "
               "migrating policies cross it roughly where M reaches the "
               "mean block length (N=8 calls) — the paper's sensibility "
               "boundary.\n";
  return 0;
}
