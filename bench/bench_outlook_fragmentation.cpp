// Outlook experiment (paper Section 5): fragmentation in non-monolithic
// systems. A shared service is either one monolith (migration cost F·M,
// every client fights over it) or F fragments with overlapping per-client
// views. Fragmentation shrinks the conflict surface — you only steal what
// you use — but the overlapping views still collide, and with unrestricted
// attachment the chained views re-create the monolith's problem.
#include "bench_common.hpp"

using namespace omig;
using migration::AttachTransitivity;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(int clients, bool monolithic, PolicyKind policy,
                           AttachTransitivity trans) {
  core::ExperimentConfig c;
  c.workload.nodes = 12;
  c.workload.clients = clients;
  c.workload.fragments = 6;
  c.workload.fragment_view = 2;
  c.workload.monolithic = monolithic;
  c.workload.mean_calls = 6.0;
  c.policy = policy;
  c.transitivity = trans;
  c.stopping = core::stopping_rule_from_env();
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Outlook — fragmentation in non-monolithic systems (Section 5)",
      "D=12, F=6 fragments, per-client views of 2 (ring overlap), "
      "N~exp(6), t_m~exp(30); x = #clients");

  std::vector<core::SweepVariant> variants{
      {"monolith+migration",
       [](double x) {
         return cfg(static_cast<int>(x), true, PolicyKind::Conventional,
                    AttachTransitivity::ATransitive);
       }},
      {"monolith+placement",
       [](double x) {
         return cfg(static_cast<int>(x), true, PolicyKind::Placement,
                    AttachTransitivity::ATransitive);
       }},
      {"fragments+migration+unrestricted",
       [](double x) {
         return cfg(static_cast<int>(x), false, PolicyKind::Conventional,
                    AttachTransitivity::Unrestricted);
       }},
      {"fragments+migration+A-trans",
       [](double x) {
         return cfg(static_cast<int>(x), false, PolicyKind::Conventional,
                    AttachTransitivity::ATransitive);
       }},
      {"fragments+placement+A-trans",
       [](double x) {
         return cfg(static_cast<int>(x), false, PolicyKind::Placement,
                    AttachTransitivity::ATransitive);
       }},
  };

  const auto xs = bench::client_axis(10, bench::env_int("OMIG_POINTS", 6));
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("clients", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text()
            << "\nExpectation: the monolith repeats the Figure-12 story "
               "with a 6×-heavier object; fragmentation + alliances + "
               "placement keeps conflicts local to the view overlaps — but "
               "fragmentation with unrestricted attachment chains the views "
               "back into a monolith-sized cluster (the Section-5 negative "
               "effect).\n";
  return 0;
}
