// Transport backend throughput and connection-scaling bench.
//
// Measures the three transport backends against the identical request
// path (marshal → transport → node mailbox → object method → reply):
//
//   echo phase   — serial round-trip RTT (p50/p99 us) and pipelined
//                  frames/sec per backend (inproc / tcp / async_tcp);
//   ladder phase — connections held concurrently against ONE node server:
//                  blocking tcp pays one OS reader thread per connection,
//                  the event-loop backend pays one fd. The ladder records
//                  wall time to establish-and-echo on every link plus the
//                  client's thread count and RSS at each rung.
//
// The frame server runs in a forked child process (its own fd budget), so
// the 10 000-connection rung fits under a 20 000-fd rlimit on each side —
// the same split a real omig_node deployment has. Prints one JSON
// document; scripts/bench_baseline.sh --transport merges it into
// BENCH_transport.json.
//
// Knobs: OMIG_BENCH_SERIAL / OMIG_BENCH_PIPELINED / OMIG_BENCH_WINDOW,
// OMIG_BENCH_LADDER_TCP_MAX (default 1000: a 10k-thread client is exactly
// the configuration the thread-per-peer backend exists to avoid).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/demo_types.hpp"
#include "runtime/live_node.hpp"
#include "transport/async_tcp_transport.hpp"
#include "transport/bridge.hpp"
#include "transport/node_server.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/transport.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using omig::transport::AsyncTcpTransport;
using omig::transport::InProcTransport;
using omig::transport::Peer;
using omig::transport::SendStatus;
using omig::transport::TcpTransport;
using omig::transport::Transport;
using omig::transport::WireInstall;
using omig::transport::WireInvoke;

constexpr std::size_t kSender = 4096;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Reads one numeric field (kB for Vm*, plain for Threads) from
/// /proc/self/status.
long proc_status_field(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      long value = 0;
      std::sscanf(line.c_str() + std::strlen(key), "%ld", &value);
      return value;
    }
  }
  return 0;
}

bool install_counter(Transport& transport, const std::string& name,
                     std::uint64_t& seq) {
  WireInstall msg;
  msg.seq = seq++;
  msg.name = name;
  msg.state = omig::runtime::make_state("counter", {{"count", "0"}});
  std::future<bool> done;
  if (transport.send_install(kSender, 0, msg, done) != SendStatus::Ok) {
    return false;
  }
  return done.get();
}

struct EchoResult {
  std::string backend;
  std::size_t round_trips = 0;
  double rtt_p50_us = 0.0;
  double rtt_p99_us = 0.0;
  double pipelined_wall_ms = 0.0;
  double frames_per_sec = 0.0;  ///< request + reply frames
};

/// Serial RTT distribution, then pipelined throughput with a bounded
/// window of outstanding requests — the shape the live runtime's
/// concurrent mailboxes produce.
EchoResult run_echo(const std::string& backend, Transport& transport,
                    std::uint64_t& seq) {
  const auto serial =
      static_cast<std::size_t>(omig::bench::env_int("OMIG_BENCH_SERIAL", 2000));
  const auto pipelined = static_cast<std::size_t>(
      omig::bench::env_int("OMIG_BENCH_PIPELINED", 20000));
  const auto window =
      static_cast<std::size_t>(omig::bench::env_int("OMIG_BENCH_WINDOW", 256));
  const std::string obj = "echo_" + backend;
  if (!install_counter(transport, obj, seq)) return {backend};

  auto invoke = [&](std::future<omig::runtime::InvokeResult>& reply) {
    WireInvoke msg;
    msg.seq = seq++;
    msg.object = obj;
    msg.method = "add";
    msg.argument = "1";
    return transport.send_invoke(kSender, 0, msg, reply);
  };

  EchoResult r;
  r.backend = backend;
  std::vector<std::uint64_t> rtt_ns;
  rtt_ns.reserve(serial);
  for (std::size_t i = 0; i < serial; ++i) {
    std::future<omig::runtime::InvokeResult> reply;
    const auto t0 = Clock::now();
    if (invoke(reply) != SendStatus::Ok || !reply.get().ok) return r;
    rtt_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count()));
  }
  std::sort(rtt_ns.begin(), rtt_ns.end());
  auto at = [&](double q) {
    const auto idx = std::min(
        rtt_ns.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(rtt_ns.size())));
    return static_cast<double>(rtt_ns[idx]) / 1e3;
  };
  r.rtt_p50_us = at(0.50);
  r.rtt_p99_us = at(0.99);

  const auto t0 = Clock::now();
  std::vector<std::future<omig::runtime::InvokeResult>> inflight;
  inflight.reserve(window);
  std::size_t issued = 0;
  std::size_t completed = 0;
  while (completed < pipelined) {
    while (issued < pipelined && inflight.size() < window) {
      std::future<omig::runtime::InvokeResult> reply;
      if (invoke(reply) != SendStatus::Ok) return r;
      inflight.push_back(std::move(reply));
      ++issued;
    }
    for (auto& reply : inflight) {
      if (!reply.get().ok) return r;
      ++completed;
    }
    inflight.clear();
  }
  r.pipelined_wall_ms = ms_since(t0);
  r.round_trips = serial + pipelined;
  r.frames_per_sec = 2.0 * static_cast<double>(pipelined) /
                     (r.pipelined_wall_ms / 1e3);
  return r;
}

struct LadderResult {
  std::string backend;
  std::size_t target_conns = 0;
  std::size_t connected = 0;
  double wall_ms = 0.0;
  long client_threads = 0;
  long client_rss_mb = 0;
  bool ok = false;
};

/// Opens `conns` links to the server (one peer entry per link), completes
/// one echo round trip on every link, and samples the client process
/// while all links are still up.
LadderResult run_ladder(const std::string& backend, std::uint16_t port,
                        std::size_t conns, std::uint64_t& seq) {
  LadderResult r;
  r.backend = backend;
  r.target_conns = conns;
  std::unique_ptr<Transport> transport;
  if (backend == "async_tcp") {
    AsyncTcpTransport::Options opts;
    opts.peers.assign(conns, Peer{"127.0.0.1", port});
    opts.max_connect_attempts = 8;
    opts.connect_backoff = std::chrono::milliseconds{5};
    transport = std::make_unique<AsyncTcpTransport>(std::move(opts), nullptr);
  } else {
    TcpTransport::Options opts;
    opts.peers.assign(conns, Peer{"127.0.0.1", port});
    opts.max_connect_attempts = 8;
    opts.connect_backoff = std::chrono::milliseconds{5};
    transport = std::make_unique<TcpTransport>(std::move(opts), nullptr);
  }
  const std::string obj = "lad_" + backend + "_" + std::to_string(conns);
  if (!install_counter(*transport, obj, seq)) return r;

  const auto t0 = Clock::now();
  std::vector<std::future<omig::runtime::InvokeResult>> replies;
  replies.reserve(conns);
  for (std::size_t conn = 0; conn < conns; ++conn) {
    WireInvoke msg;
    msg.seq = seq++;
    msg.object = obj;
    msg.method = "get";
    std::future<omig::runtime::InvokeResult> reply;
    if (transport->send_invoke(kSender, conn, msg, reply) != SendStatus::Ok) {
      return r;
    }
    replies.push_back(std::move(reply));
  }
  for (auto& reply : replies) {
    try {
      if (!reply.get().ok) return r;
    } catch (const std::future_error&) {
      return r;
    }
    ++r.connected;
  }
  r.wall_ms = ms_since(t0);
  r.client_threads = proc_status_field("Threads:");
  r.client_rss_mb = proc_status_field("VmRSS:") / 1024;
  r.ok = r.connected == conns;
  return r;
}

/// The frame server, in a forked child: a real LiveNode behind a
/// NodeServer, exactly what `omig_node --port` runs. Writes the bound
/// port to `port_fd`, serves until `stop_fd` reaches EOF.
[[noreturn]] void server_child(int port_fd, int stop_fd) {
  auto factories = omig::runtime::demo_factories();
  omig::runtime::LiveNode node(0, &factories);
  node.start();
  omig::transport::NodeServer server([&node](omig::transport::Frame frame) {
    return omig::transport::serve_on_mailbox(node.mailbox(),
                                             std::move(frame));
  });
  const std::uint16_t port = server.start();
  (void)!write(port_fd, &port, sizeof(port));
  close(port_fd);
  char byte = 0;
  while (read(stop_fd, &byte, 1) > 0) {
  }
  server.stop();
  node.stop();
  std::_Exit(0);
}

}  // namespace

int main() {
  // Fork the server before any thread exists in this process.
  int port_pipe[2];
  int stop_pipe[2];
  if (pipe(port_pipe) != 0 || pipe(stop_pipe) != 0) return 1;
  const pid_t child = fork();
  if (child < 0) return 1;
  if (child == 0) {
    close(port_pipe[0]);
    close(stop_pipe[1]);
    server_child(port_pipe[1], stop_pipe[0]);
  }
  close(port_pipe[1]);
  close(stop_pipe[0]);
  std::uint16_t port = 0;
  if (read(port_pipe[0], &port, sizeof(port)) != sizeof(port) || port == 0) {
    std::fprintf(stderr, "server child failed to bind\n");
    return 1;
  }
  close(port_pipe[0]);

  std::uint64_t seq = 1;
  std::vector<EchoResult> echo;

  {
    // In-process baseline: same request path, no wire.
    auto factories = omig::runtime::demo_factories();
    omig::runtime::LiveNode node(0, &factories);
    node.start();
    InProcTransport inproc(
        [&node](std::size_t) { return &node.mailbox(); }, nullptr);
    echo.push_back(run_echo("inproc", inproc, seq));
    node.stop();
  }
  {
    TcpTransport::Options opts;
    opts.peers = {Peer{"127.0.0.1", port}};
    TcpTransport tcp(std::move(opts), nullptr);
    echo.push_back(run_echo("tcp", tcp, seq));
  }
  {
    AsyncTcpTransport::Options opts;
    opts.peers = {Peer{"127.0.0.1", port}};
    AsyncTcpTransport async(std::move(opts), nullptr);
    echo.push_back(run_echo("async_tcp", async, seq));
  }

  const long tcp_ladder_max =
      omig::bench::env_int("OMIG_BENCH_LADDER_TCP_MAX", 1000);
  std::vector<LadderResult> ladder;
  for (const std::size_t conns : {std::size_t{100}, std::size_t{1000}}) {
    if (static_cast<long>(conns) <= tcp_ladder_max) {
      ladder.push_back(run_ladder("tcp", port, conns, seq));
    }
  }
  for (const std::size_t conns :
       {std::size_t{100}, std::size_t{1000}, std::size_t{10000}}) {
    ladder.push_back(run_ladder("async_tcp", port, conns, seq));
  }

  std::ostringstream out;
  out << "{\n  \"echo\": [\n";
  for (std::size_t i = 0; i < echo.size(); ++i) {
    const auto& r = echo[i];
    out << "    {\"backend\": \"" << r.backend
        << "\", \"round_trips\": " << r.round_trips
        << ", \"rtt_p50_us\": " << r.rtt_p50_us
        << ", \"rtt_p99_us\": " << r.rtt_p99_us
        << ", \"frames_per_sec\": " << r.frames_per_sec << "}"
        << (i + 1 < echo.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"ladder\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i];
    out << "    {\"backend\": \"" << r.backend
        << "\", \"target_conns\": " << r.target_conns
        << ", \"connected\": " << r.connected
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"client_threads\": " << r.client_threads
        << ", \"client_rss_mb\": " << r.client_rss_mb
        << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
        << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fputs(out.str().c_str(), stdout);

  close(stop_pipe[1]);  // EOF → child stops
  int status = 0;
  waitpid(child, &status, 0);
  return 0;
}
