// Ablation: the paper normalises all object-location mechanisms away
// ("we neglected the effects of different policies for object location",
// Section 4.1). We re-introduce the four cited schemes — name-server
// lookup, forwarding addresses, broadcast, immediate update — and show the
// policy ordering survives, which justifies the normalisation.
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;
using objsys::LocationScheme;

int main() {
  bench::print_header(
      "Ablation — object-location schemes (Section 4.1 normalisation)",
      "Figure-9 parameters at t_m=10 (contended)");

  core::TextTable table{{"scheme", "without-migration", "migration",
                         "transient-placement"}};
  for (const auto scheme :
       {LocationScheme::None, LocationScheme::NameServer,
        LocationScheme::Forwarding, LocationScheme::Broadcast,
        LocationScheme::ImmediateUpdate}) {
    std::vector<std::string> row{objsys::to_string(scheme)};
    for (const auto policy :
         {PolicyKind::Sedentary, PolicyKind::Conventional,
          PolicyKind::Placement}) {
      auto cfg = core::fig8_config(10.0, policy);
      cfg.location_scheme = scheme;
      row.push_back(
          core::format_double(core::run_experiment(cfg).total_per_call, 4));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_text()
            << "\nExpectation: each scheme shifts the absolute level but "
               "placement <= migration in every row.\n";
  return 0;
}
