// Outlook experiment (paper Section 5): "It seems worthwhile to
// investigate whether similar negative effects as we have shown for object
// migration arise for other mechanisms like replication … in
// non-monolithic systems."
//
// We run the Figure-13 hot-spot population with *replicate-on-read*
// instead of migration and sweep the read fraction. The non-monolithic
// twist: independent components issue writes without knowing who holds
// copies — every write invalidates all replicas, so at low read fractions
// the copies are re-shipped over and over (the replication analogue of the
// conflicting-moves thrashing).
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(int clients, double read_fraction,
                           objsys::ReplicationMode mode, PolicyKind policy) {
  auto c = core::fig12_config(clients, policy);
  c.workload.read_fraction = read_fraction;
  c.replication = mode;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Outlook — replication in non-monolithic systems (Section 5)",
      "Figure-13 parameters, sedentary primaries + replicate-on-read; "
      "x = #clients; one column per read fraction");

  core::TextTable table{{"clients", "no-replication", "repl r=0.50",
                         "repl r=0.90", "repl r=0.99", "placement (ref)"}};
  for (const double x : bench::client_axis(25, bench::env_int("OMIG_POINTS", 7))) {
    const int c = static_cast<int>(x);
    std::vector<double> row;
    row.push_back(core::run_experiment(
                      cfg(c, 0.9, objsys::ReplicationMode::None,
                          PolicyKind::Sedentary))
                      .total_per_call);
    for (const double r : {0.50, 0.90, 0.99}) {
      row.push_back(core::run_experiment(
                        cfg(c, r, objsys::ReplicationMode::ReplicateOnRead,
                            PolicyKind::Sedentary))
                        .total_per_call);
    }
    row.push_back(core::run_experiment(
                      cfg(c, 0.9, objsys::ReplicationMode::None,
                          PolicyKind::Placement))
                      .total_per_call);
    table.add_numeric_row(x, row, 4);
  }
  std::cout << table.to_text()
            << "\nExpectation: replication only wins for read-dominated "
               "sharing (r near 1); at moderate write rates uncoordinated "
               "invalidations make it *worse* than doing nothing — the "
               "paper's conjectured negative effect, reproduced.\n";
  return 0;
}
