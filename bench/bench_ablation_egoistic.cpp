// Ablation: the egoistic implementor (Section 2.4 — "some implementors may
// behave completely egoistic to tilt the system towards good behavior for
// their own application"). A growing number of conventional-move clients
// inside an otherwise placement-disciplined population: how much damage
// does each defector do, and does defecting even pay off for the defector?
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

int main() {
  bench::print_header(
      "Ablation — egoistic components in a placement system (Section 2.4)",
      "Figure-9 parameters at t_m=10, C=6 clients on 6 nodes; x = number "
      "of clients running conventional move() instead of placement");

  core::TextTable table{{"egoistic-clients", "system mean comm-time/call",
                         "migrations"}};
  for (int egoistic = 0; egoistic <= 6; ++egoistic) {
    auto cfg = core::fig8_config(10.0, PolicyKind::Placement);
    cfg.workload.nodes = 6;
    cfg.workload.clients = 6;
    cfg.workload.servers1 = 3;
    cfg.egoistic_clients = egoistic;
    cfg.egoistic_policy = PolicyKind::Conventional;
    const auto r = core::run_experiment(cfg);
    table.add_row({std::to_string(egoistic),
                   core::format_double(r.total_per_call, 4),
                   std::to_string(r.migrations)});
  }
  std::cout << table.to_text()
            << "\nExpectation: the shared metric degrades monotonically "
               "with the number of defectors — placement only protects a "
               "system whose components all honour it, which is why it is "
               "enforced in the run-time system, not in the components.\n";
  return 0;
}
