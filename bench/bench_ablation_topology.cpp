// Ablation: the paper claims network structure does not change the results
// (Section 4.1). Under the paper's uniform latency this is exact; under the
// hop-scaled latency model the absolute values shift but the policy
// ordering — placement <= migration under conflict — survives.
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(net::TopologyKind topo, net::LatencyMode mode,
                           PolicyKind policy) {
  auto c = core::fig8_config(10.0, policy);
  c.topology = topo;
  c.latency_mode = mode;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — topology insensitivity (Section 4.1 claim)",
      "Figure-9 parameters at t_m=10; latency: uniform (paper) and "
      "hop-scaled");

  const std::vector<std::pair<std::string, net::TopologyKind>> topologies{
      {"full-mesh", net::TopologyKind::FullMesh},
      {"ring", net::TopologyKind::Ring},
      {"star", net::TopologyKind::Star},
      {"grid", net::TopologyKind::Grid},
  };

  for (const auto mode :
       {net::LatencyMode::Uniform, net::LatencyMode::HopScaled}) {
    core::TextTable table{{"topology", "without-migration", "migration",
                           "transient-placement"}};
    for (const auto& [name, topo] : topologies) {
      std::vector<std::string> row{name};
      for (const auto policy :
           {PolicyKind::Sedentary, PolicyKind::Conventional,
            PolicyKind::Placement}) {
        const auto r = core::run_experiment(cfg(topo, mode, policy));
        row.push_back(core::format_double(r.total_per_call, 4));
      }
      table.add_row(std::move(row));
    }
    std::cout << (mode == net::LatencyMode::Uniform
                      ? "\nuniform latency (paper model):\n"
                      : "\nhop-scaled latency:\n")
              << table.to_text();
  }
  std::cout << "\nExpectation: rows identical under uniform latency; "
               "placement <= migration in every row.\n";
  return 0;
}
