// Microbenchmarks of the live multi-threaded runtime (google-benchmark):
// local vs remote invocation throughput, migration latency including the
// byte-level linearisation round trip, and placement move/end cycles.
#include <benchmark/benchmark.h>

#include "runtime/live_system.hpp"
#include "runtime/serde.hpp"

namespace {

using namespace omig::runtime;

ObjectFactory counter_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("inc", [](ObjectState& self, const std::string&) {
      self.fields["value"] =
          std::to_string(std::stoi(self.fields["value"]) + 1);
      return self.fields["value"];
    });
    return obj;
  };
}

ObjectState counter_state() {
  ObjectState s;
  s.type = "counter";
  s.fields["value"] = "0";
  return s;
}

std::unique_ptr<LiveSystem> make_system(std::size_t nodes) {
  LiveSystem::Options opts;
  opts.nodes = nodes;
  auto sys = std::make_unique<LiveSystem>(opts);
  sys->register_type("counter", counter_factory());
  sys->start();
  sys->create("c", counter_state(), 0);
  return sys;
}

void BM_LiveInvokeLocal(benchmark::State& state) {
  auto sys = make_system(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->invoke_from(0, "c", "inc", ""));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveInvokeLocal);

void BM_LiveInvokeRemote(benchmark::State& state) {
  auto sys = make_system(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->invoke_from(1, "c", "inc", ""));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveInvokeRemote);

void BM_LiveMigrateRoundTrip(benchmark::State& state) {
  auto sys = make_system(2);
  for (auto _ : state) {
    sys->migrate("c", 1);
    sys->migrate("c", 0);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_LiveMigrateRoundTrip);

void BM_LiveMoveEndCycle(benchmark::State& state) {
  auto sys = make_system(3);
  std::size_t dest = 1;
  for (auto _ : state) {
    auto token = sys->move("c", dest);
    sys->end(token);
    dest = 3 - dest;  // alternate 1 <-> 2
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveMoveEndCycle);

void BM_SerdeRoundTrip(benchmark::State& state) {
  ObjectState s;
  s.type = "cart";
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    s.fields["field-" + std::to_string(i)] = std::string(32, 'x');
  }
  for (auto _ : state) {
    auto decoded = decode(encode(s));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerdeRoundTrip)->Arg(4)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
