// Microbenchmarks of the live multi-threaded runtime (google-benchmark):
// local vs remote invocation throughput, migration latency including the
// byte-level linearisation round trip, and placement move/end cycles.
//
// The invoke and migration benches carry a transport dimension — arg 0 is
// the backend (0 = in-proc mailboxes, 1 = TCP over loopback) — so the wire
// marshalling + socket round trip shows up as a measured delta against the
// identical in-process workload (docs/transport.md).
#include <benchmark/benchmark.h>

#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"
#include "runtime/serde.hpp"
#include "transport/wire.hpp"

namespace {

using namespace omig::runtime;

ObjectState counter_state() { return make_state("counter", {{"count", "0"}}); }

TransportKind kind_of(const benchmark::State& state) {
  return state.range(0) == 0 ? TransportKind::InProc : TransportKind::Tcp;
}

std::unique_ptr<LiveSystem> make_system(std::size_t nodes,
                                        TransportKind transport) {
  LiveSystem::Options opts;
  opts.nodes = nodes;
  opts.transport = transport;
  auto sys = std::make_unique<LiveSystem>(opts);
  register_demo_types(*sys);
  sys->start();
  sys->create("c", counter_state(), 0);
  return sys;
}

void set_transport_label(benchmark::State& state) {
  state.SetLabel(state.range(0) == 0 ? "inproc" : "tcp");
}

void BM_LiveInvokeLocal(benchmark::State& state) {
  auto sys = make_system(2, kind_of(state));
  set_transport_label(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->invoke_from(0, "c", "add", "1"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveInvokeLocal)->Arg(0)->Arg(1);

void BM_LiveInvokeRemote(benchmark::State& state) {
  auto sys = make_system(2, kind_of(state));
  set_transport_label(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->invoke_from(1, "c", "add", "1"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveInvokeRemote)->Arg(0)->Arg(1);

void BM_LiveMigrateRoundTrip(benchmark::State& state) {
  auto sys = make_system(2, kind_of(state));
  set_transport_label(state);
  for (auto _ : state) {
    sys->migrate("c", 1);
    sys->migrate("c", 0);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_LiveMigrateRoundTrip)->Arg(0)->Arg(1);

void BM_LiveMoveEndCycle(benchmark::State& state) {
  auto sys = make_system(3, kind_of(state));
  set_transport_label(state);
  std::size_t dest = 1;
  for (auto _ : state) {
    auto token = sys->move("c", dest);
    sys->end(token);
    dest = 3 - dest;  // alternate 1 <-> 2
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveMoveEndCycle)->Arg(0)->Arg(1);

void BM_SerdeRoundTrip(benchmark::State& state) {
  ObjectState s;
  s.type = "cart";
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    s.fields["field-" + std::to_string(i)] = std::string(32, 'x');
  }
  for (auto _ : state) {
    auto decoded = decode(encode(s));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerdeRoundTrip)->Arg(4)->Arg(64);

// Pure codec cost of one wire frame (no sockets): encode an invoke request
// carrying a `range(0)`-field object state, then strictly decode it back.
void BM_WireFrameRoundTrip(benchmark::State& state) {
  using namespace omig::transport;
  WireInstall msg;
  msg.seq = 1;
  msg.name = "c";
  msg.state.type = "cart";
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    msg.state.fields["field-" + std::to_string(i)] = std::string(32, 'x');
  }
  const Frame frame{42, msg};
  for (auto _ : state) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    auto decoded = decode_payload(
        {bytes.data() + 4, bytes.size() - 4});
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireFrameRoundTrip)->Arg(4)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
