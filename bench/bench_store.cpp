// Microbenchmarks of the durable store (google-benchmark): WAL append
// cost with and without the per-record fsync, recovery replay throughput,
// snapshot compaction, and the raw CRC32 framing cost — the numbers
// behind the fsync-discipline discussion in docs/durability.md.
//
// All benches run against a throwaway directory under /tmp, so they
// measure this machine's filesystem; see scripts/bench_baseline.sh.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "store/crc32.hpp"
#include "store/store.hpp"
#include "store/wal.hpp"

namespace {

using namespace omig::store;

/// Fresh scratch directory; removed when the bench iteration set ends.
struct ScratchDir {
  std::string path;
  ScratchDir() {
    char dir_template[] = "/tmp/omig-bench-store-XXXXXX";
    if (mkdtemp(dir_template) != nullptr) path = dir_template;
  }
  ~ScratchDir() {
    if (path.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<std::uint8_t> state_blob(std::size_t bytes) {
  return std::vector<std::uint8_t>(bytes, 0x5A);
}

// One checkpoint append per iteration. Arg 0 is the state-blob size, arg 1
// selects the fsync discipline (1 = fsync every append — the durability
// contract's configuration; 0 = buffered, the lease-record fast path).
void BM_WalAppend(benchmark::State& state) {
  ScratchDir scratch;
  DurableStore::OpenOptions opts;
  opts.dir = scratch.path;
  opts.sync_each_append = state.range(1) == 1;
  DurableStore store;
  if (!store.open(std::move(opts))) {
    state.SkipWithError("store.open failed");
    return;
  }
  const auto blob = state_blob(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.checkpoint("obj", 0, 0, blob));
  }
  state.SetLabel(state.range(1) == 1 ? "fsync" : "buffered");
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_WalAppend)
    ->Args({64, 1})
    ->Args({64, 0})
    ->Args({4096, 1})
    ->Args({4096, 0});

// Recovery replay: reopen a store whose WAL holds range(0) records. The
// open itself (read + CRC check + view fold + tail truncate) is timed.
void BM_WalReplay(benchmark::State& state) {
  ScratchDir scratch;
  const auto blob = state_blob(256);
  {
    DurableStore::OpenOptions opts;
    opts.dir = scratch.path;
    opts.sync_each_append = false;
    DurableStore store;
    if (!store.open(std::move(opts))) {
      state.SkipWithError("store.open failed");
      return;
    }
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      (void)store.checkpoint("obj-" + std::to_string(i % 64), 0, 0, blob);
    }
    (void)store.sync();
  }
  for (auto _ : state) {
    DurableStore::OpenOptions opts;
    opts.dir = scratch.path;
    DurableStore store;
    if (!store.open(std::move(opts))) {
      state.SkipWithError("reopen failed");
      return;
    }
    benchmark::DoNotOptimize(store.recovery().replayed_records);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WalReplay)->Arg(256)->Arg(4096);

// Snapshot compaction of a range(0)-object view: encode, CRC, atomic
// rename install, WAL reset.
void BM_SnapshotCompact(benchmark::State& state) {
  ScratchDir scratch;
  DurableStore::OpenOptions opts;
  opts.dir = scratch.path;
  opts.sync_each_append = false;
  DurableStore store;
  if (!store.open(std::move(opts))) {
    state.SkipWithError("store.open failed");
    return;
  }
  const auto blob = state_blob(256);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    (void)store.checkpoint("obj-" + std::to_string(i), 0, 0, blob);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.compact());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotCompact)->Arg(64)->Arg(1024);

// Pure framing cost, no disk: encode one record and CRC its payload.
void BM_RecordEncode(benchmark::State& state) {
  WalRecord record;
  record.kind = RecordKind::Checkpoint;
  record.seq = 1;
  record.name = "obj";
  record.blob = state_blob(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_record(record));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(record.blob.size()));
}
BENCHMARK(BM_RecordEncode)->Arg(64)->Arg(4096);

void BM_Crc32(benchmark::State& state) {
  const auto blob = state_blob(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(blob));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
