// Figure 14: conservative placement vs the two dynamic strategies
// ("comparing the nodes", "comparing and reinstantiation") on a crowded
// 3-node system (parameters of Figure 15). Paper conclusion: the dynamic
// policies bring only marginal gains — and that is *before* charging their
// bookkeeping overhead, which is neglected here exactly as in the paper.
//
// Re-judged with modern telemetry (docs/policies.md): the grid also runs
// the EMA-driven adaptive kinds, whose bookkeeping *is* charged — the
// locality tracker rides the real invocation path (measured <5% per block,
// BENCH_policy.json) — so "not worth the overhead" finally meets a policy
// that pays its overhead up front. Verdict in EXPERIMENTS.md.
#include "bench_common.hpp"

#include "core/plot.hpp"

using namespace omig;
using migration::PolicyKind;

int main() {
  bench::print_header(
      "Figure 14 — Exploiting dynamic information",
      "D=3 S1=3 S2=0 M=6 N~exp(8) t_i~exp(1) t_m~exp(30); x = #clients");

  std::vector<core::SweepVariant> variants{
      {"conservative-place",
       [](double x) {
         return core::fig14_config(static_cast<int>(x),
                                   PolicyKind::Placement);
       }},
      {"comparing-the-nodes",
       [](double x) {
         return core::fig14_config(static_cast<int>(x),
                                   PolicyKind::CompareNodes);
       }},
      {"comparing+reinstantiation",
       [](double x) {
         return core::fig14_config(static_cast<int>(x),
                                   PolicyKind::CompareReinstantiate);
       }},
      {"adaptive",
       [](double x) {
         return core::fig14_config(static_cast<int>(x),
                                   PolicyKind::Adaptive);
       }},
      {"adaptive-load",
       [](double x) {
         return core::fig14_config(static_cast<int>(x),
                                   PolicyKind::AdaptiveLoad);
       }},
  };

  const auto xs = bench::client_axis(25, bench::env_int("OMIG_POINTS", 13));
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("clients", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text() << '\n'
            << core::plot_sweep(variants, points,
                                core::Metric::TotalPerCall)
            << "\ncsv:\n" << table.to_csv();
  return 0;
}
