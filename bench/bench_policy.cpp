// Microbenchmarks for the adaptive placement machinery (google-benchmark),
// recorded into BENCH_policy.json by scripts/bench_baseline.sh --policy:
// the locality tracker's record()/estimate() hot path in isolation, and
// the end-to-end per-block cost of a full experiment. Two distinct ratios:
//   Sedentary vs SedentaryTracked — identical simulation, tracker attached
//     but unconsumed: the pure bookkeeping overhead. Budget <5% on
//     BM_ExperimentBlocks, matching the PR 4 instrumentation discipline
//     (docs/metrics.md's cost table; see docs/policies.md).
//   Sedentary vs Adaptive/AdaptiveLoad — a *behavioral* delta (the policy
//     actually migrates objects); informational, not an overhead number.
#include <benchmark/benchmark.h>

#include "core/presets.hpp"
#include "objsys/locality.hpp"

namespace {

using namespace omig;

void BM_LocalityRecord(benchmark::State& state) {
  // Steady-state record() cost: a working set of objects, callers striding
  // over the node set so every caller slot stays warm. O(1) per call by
  // contract (objsys/locality.hpp) — this pins the constant.
  const std::uint32_t objects = static_cast<std::uint32_t>(state.range(0));
  objsys::LocalityTracker tracker{8};
  std::uint32_t i = 0;
  for (auto _ : state) {
    tracker.record(objsys::ObjectId{i % objects},
                   objsys::NodeId{(i * 5) % 8});
    ++i;
  }
  benchmark::DoNotOptimize(tracker.updates());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalityRecord)->Arg(1)->Arg(64)->Arg(4096);

void BM_LocalityEstimate(benchmark::State& state) {
  // The decision-point read: one estimate() per simulated move().
  objsys::LocalityTracker tracker{8};
  for (std::uint32_t i = 0; i < 64 * 16; ++i) {
    tracker.record(objsys::ObjectId{i % 64}, objsys::NodeId{(i * 5) % 8});
  }
  std::uint32_t i = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += tracker.estimate(objsys::ObjectId{i % 64},
                            objsys::NodeId{i % 8})
               .share;
    ++i;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalityEstimate);

void run_blocks(benchmark::State& state, migration::PolicyKind kind,
                bool track_locality = false) {
  // Same shape as bench_kernel_throughput's BM_ExperimentBlocks: 500
  // Figure-9 move-blocks end to end.
  for (auto _ : state) {
    auto cfg = core::fig8_config(30.0, kind);
    cfg.track_locality = track_locality;
    cfg.stopping.min_observations = 500;
    cfg.stopping.max_observations = 500;
    cfg.stopping.relative_target = 1.0;
    const auto r = core::run_experiment(cfg);
    benchmark::DoNotOptimize(r.total_per_call);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_ExperimentBlocksSedentary(benchmark::State& state) {
  run_blocks(state, migration::PolicyKind::Sedentary);
}
BENCHMARK(BM_ExperimentBlocksSedentary)->Unit(benchmark::kMillisecond);

void BM_ExperimentBlocksSedentaryTracked(benchmark::State& state) {
  // The <5% budget pair: identical simulation (the tracker is RNG-free and
  // nothing consumes it under Sedentary), so the delta vs the untracked
  // run above is purely the per-invocation record() bookkeeping.
  run_blocks(state, migration::PolicyKind::Sedentary,
             /*track_locality=*/true);
}
BENCHMARK(BM_ExperimentBlocksSedentaryTracked)->Unit(benchmark::kMillisecond);

void BM_ExperimentBlocksAdaptive(benchmark::State& state) {
  run_blocks(state, migration::PolicyKind::Adaptive);
}
BENCHMARK(BM_ExperimentBlocksAdaptive)->Unit(benchmark::kMillisecond);

void BM_ExperimentBlocksAdaptiveLoad(benchmark::State& state) {
  run_blocks(state, migration::PolicyKind::AdaptiveLoad);
}
BENCHMARK(BM_ExperimentBlocksAdaptiveLoad)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
