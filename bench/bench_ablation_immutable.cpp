// Ablation: immutable ("static") hot-spot objects. Section 1 of the paper:
// "parallel accesses are conventionally only treated for the case of
// immutable objects — moving a static object simply creates a copy." For a
// read-only hot spot the whole conflict problem dissolves: every client
// node ends up with a copy and all policies converge. This bench contrasts
// the Figure-12 hot-spot sweep with its immutable twin.
#include "bench_common.hpp"

using namespace omig;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(int clients, PolicyKind policy, bool immutable) {
  auto c = core::fig12_config(clients, policy);
  c.workload.immutable_servers = immutable;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — immutable hot-spot objects (Section 1 copy semantics)",
      "Figure-13 parameters; x = #clients; servers immutable vs mutable");

  std::vector<core::SweepVariant> variants{
      {"mutable+migration",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Conventional, false);
       }},
      {"mutable+placement",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Placement, false);
       }},
      {"static+migration",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Conventional, true);
       }},
      {"static+placement",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Placement, true);
       }},
  };

  const auto xs = bench::client_axis(25, bench::env_int("OMIG_POINTS", 7));
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("clients", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text()
            << "\nExpectation: with static servers both policies converge "
               "to ~0 (every client node eventually holds copies) and the "
               "conflict-driven divergence of Figure 12 disappears.\n";
  return 0;
}
