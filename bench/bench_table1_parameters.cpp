// Table 1: the simulation parameters and their distributions, printed from
// the library's own defaults (validates that the presets plumb Table 1
// through unchanged).
#include <iostream>

#include "core/presets.hpp"
#include "core/table.hpp"

using namespace omig;

int main() {
  const auto p = core::table1_defaults();
  core::TextTable table{{"Parameter", "Description", "Distribution",
                         "Default"}};
  table.add_row({"D", "Number of nodes", "fixed",
                 std::to_string(p.nodes)});
  table.add_row({"C", "Number of clients", "fixed",
                 std::to_string(p.clients)});
  table.add_row({"S1", "Number of 1st layer servers", "fixed",
                 std::to_string(p.servers1)});
  table.add_row({"S2", "Number of 2nd layer servers", "fixed",
                 std::to_string(p.servers2)});
  table.add_row({"M", "Migration duration for servers", "fixed",
                 core::format_double(p.migration_duration, 0)});
  table.add_row({"N", "Number of calls in a move-block", "exp.",
                 core::format_double(p.mean_calls, 0)});
  table.add_row({"t_i", "Time between two calls in a block", "exp.",
                 core::format_double(p.mean_intercall, 0)});
  table.add_row({"t_m", "Time between two move blocks", "exp.",
                 core::format_double(p.mean_interblock, 0)});
  table.add_row({"-", "Duration of a remote call", "exp.", "1"});

  std::cout << "Table 1 — Relevant simulation parameters\n\n"
            << table.to_text();
  return 0;
}
