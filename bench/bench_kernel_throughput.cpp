// Microbenchmarks of the simulation substrate (google-benchmark): event
// throughput of the DES kernel, RNG speed, attachment-closure computation,
// and end-to-end experiment cost per simulated block.
#include <benchmark/benchmark.h>

#include "core/presets.hpp"
#include "migration/attachment.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace {

using namespace omig;

sim::Task ping(sim::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.delay(1.0);
}

void BM_EngineEventThroughput(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(ping(eng, hops));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1'000)->Arg(100'000);

void BM_ManyConcurrentProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < procs; ++i) eng.spawn(ping(eng, 100));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * 100);
}
BENCHMARK(BM_ManyConcurrentProcesses)->Arg(100)->Arg(1'000);

void BM_SpawnChurn(benchmark::State& state) {
  // Short-lived tasks at call rate — the workload shape that stresses the
  // coroutine frame pool: every spawn is two frames (task + root wrapper)
  // that die almost immediately, so steady-state throughput is set by how
  // cheaply frames come back.
  const int procs = static_cast<int>(state.range(0));
  sim::Engine eng;
  for (auto _ : state) {
    for (int i = 0; i < procs; ++i) eng.spawn(ping(eng, 1));
    eng.run();
    eng.clear();
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_SpawnChurn)->Arg(1'000);

void BM_RngExponential(benchmark::State& state) {
  sim::Rng rng{1, 0};
  double acc = 0.0;
  for (auto _ : state) acc += rng.exponential(1.0);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void BM_AttachmentClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  migration::AttachmentGraph g;
  // Ring of n objects: worst-case closure walks everything.
  for (int i = 0; i < n; ++i) {
    g.attach(migration::ObjectId{static_cast<std::uint32_t>(i)},
             migration::ObjectId{static_cast<std::uint32_t>((i + 1) % n)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.closure(migration::ObjectId{0}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AttachmentClosure)->Arg(12)->Arg(256);

void BM_ExperimentBlocks(benchmark::State& state) {
  // End-to-end cost of one simulated move-block (Figure-9 parameters).
  for (auto _ : state) {
    auto cfg = core::fig8_config(30.0, migration::PolicyKind::Placement);
    cfg.stopping.min_observations = 500;
    cfg.stopping.max_observations = 500;
    cfg.stopping.relative_target = 1.0;
    const auto r = core::run_experiment(cfg);
    benchmark::DoNotOptimize(r.total_per_call);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ExperimentBlocks)->Unit(benchmark::kMillisecond);

}  // namespace
