// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/sweep.hpp"

namespace omig::bench {

/// Reads an integer knob from the environment (bench resolution control).
inline int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

/// True when OMIG_PROGRESS is set: per-point progress goes to stderr.
inline std::ostream* progress_stream() {
  static const bool on = std::getenv("OMIG_PROGRESS") != nullptr;
  return on ? &std::cerr : nullptr;
}

/// Sweep execution options shared by every figure/ablation bench: all cores
/// unless OMIG_THREADS says otherwise (OMIG_THREADS=1 forces the sequential
/// path), progress per OMIG_PROGRESS. Results are bit-identical for every
/// thread count, so the tables in bench_output.txt never depend on this.
inline core::SweepOptions sweep_options() {
  core::SweepOptions opts;
  opts.threads = env_int("OMIG_THREADS", 0);
  opts.progress = progress_stream();
  return opts;
}

/// Prints the standard bench header: what the paper shows and with which
/// parameters, so the output is self-describing in bench_output.txt.
inline void print_header(const std::string& title,
                         const std::string& params) {
  std::cout << "==============================================================\n"
            << title << '\n'
            << params << '\n'
            << "stopping: " << core::stopping_rule_from_env().relative_target *
                                   100.0
            << "% half-width at p=0.99 (override: OMIG_CI_TARGET, "
               "OMIG_MAX_BLOCKS; threads: OMIG_THREADS, default all cores)\n"
            << "==============================================================\n";
}

/// Client-count x-axis helper: 1..max, thinned to ~`points` values.
inline std::vector<double> client_axis(int max_clients, int points) {
  std::vector<double> xs;
  const double step =
      points > 1 ? static_cast<double>(max_clients - 1) / (points - 1) : 1.0;
  int last = 0;
  for (int i = 0; i < points; ++i) {
    int c = 1 + static_cast<int>(step * i + 0.5);
    if (c > max_clients) c = max_clients;
    if (c == last) continue;
    last = c;
    xs.push_back(static_cast<double>(c));
  }
  return xs;
}

}  // namespace omig::bench
