// Ablation: DESIGN.md's cluster-transfer concretisation — the paper leaves
// open whether an attached cluster migrates in parallel (duration max M_i,
// consistent with the unsaturated-network assumption; our default) or
// serially (duration sum M_i). The ordering of the Figure-16 variants must
// not depend on this choice; serial only amplifies the gaps.
#include "bench_common.hpp"

using namespace omig;
using migration::AttachTransitivity;
using migration::ClusterTransfer;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(int clients, PolicyKind policy,
                           AttachTransitivity trans, ClusterTransfer mode) {
  auto c = core::fig16_config(clients, policy, trans);
  c.transfer = mode;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — parallel vs serial cluster transfer",
      "Figure-17 parameters at C=8");

  core::TextTable table{{"variant", "parallel", "serial"}};
  const struct {
    const char* label;
    PolicyKind policy;
    AttachTransitivity trans;
  } variants[] = {
      {"migration+unrestricted", PolicyKind::Conventional,
       AttachTransitivity::Unrestricted},
      {"migration+A-transitive", PolicyKind::Conventional,
       AttachTransitivity::ATransitive},
      {"placement+unrestricted", PolicyKind::Placement,
       AttachTransitivity::Unrestricted},
      {"placement+A-transitive", PolicyKind::Placement,
       AttachTransitivity::ATransitive},
  };
  for (const auto& v : variants) {
    const auto par = core::run_experiment(
        cfg(8, v.policy, v.trans, ClusterTransfer::Parallel));
    const auto ser = core::run_experiment(
        cfg(8, v.policy, v.trans, ClusterTransfer::Serial));
    table.add_row({v.label, core::format_double(par.total_per_call, 4),
                   core::format_double(ser.total_per_call, 4)});
  }
  std::cout << table.to_text()
            << "\nExpectation: serial >= parallel everywhere; variant "
               "ordering unchanged.\n";
  return 0;
}
