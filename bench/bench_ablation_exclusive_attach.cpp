// Ablation: Section 3.4's alternative to alliances — exclusive attachments
// (an object may be attached to at most one other object, first come first
// served). The paper describes but does not plot this; we run it on the
// Figure-16/17 workload next to unrestricted and A-transitive attachment.
#include "bench_common.hpp"

using namespace omig;
using migration::AttachTransitivity;
using migration::PolicyKind;

namespace {

core::ExperimentConfig cfg(int clients, PolicyKind policy,
                           AttachTransitivity trans, bool exclusive) {
  auto c = core::fig16_config(clients, policy, trans);
  c.exclusive_attachments = exclusive;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — exclusive attachments (Section 3.4 alternative)",
      "Figure-17 parameters; exclusive = at most one attachment per object");

  std::vector<core::SweepVariant> variants{
      {"migration+unrestricted",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Conventional,
                    AttachTransitivity::Unrestricted, false);
       }},
      {"migration+exclusive",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Conventional,
                    AttachTransitivity::Unrestricted, true);
       }},
      {"migration+A-transitive",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Conventional,
                    AttachTransitivity::ATransitive, false);
       }},
      {"placement+exclusive",
       [](double x) {
         return cfg(static_cast<int>(x), PolicyKind::Placement,
                    AttachTransitivity::Unrestricted, true);
       }},
  };

  const auto xs = bench::client_axis(12, bench::env_int("OMIG_POINTS", 7));
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("clients", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text()
            << "\nExpectation: exclusive attachment caps cluster size at 2, "
               "landing between unrestricted and A-transitive.\n";
  return 0;
}
