// Location-directory lookup latency: Central (one name-server map, the
// seed behaviour) vs Sharded (per-node caches + forwarding chases + shard
// owner), at 10 / 100 / 1000 simulated nodes. Reports per-lookup p50/p99
// in nanoseconds as JSON; scripts/bench_baseline.sh --directory merges the
// output into BENCH_directory.json.
//
// The workload interleaves lookups from random origin nodes with
// migrations (one move per eight lookups), so the sharded side exercises
// the full mix the runtime sees: cache hits, stale entries healed through
// forwarding pointers, and authoritative owner consults. Both sides run
// the model layer (objsys), not live threads — 1000 nodes is a directory
// size, not an OS-thread count.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "objsys/ids.hpp"
#include "objsys/sharded_directory.hpp"

namespace {

using omig::objsys::ConsistencyStrategy;
using omig::objsys::NodeId;
using omig::objsys::ObjectId;
using omig::objsys::ShardedDirectory;
using omig::objsys::ShardedDirectoryOptions;

using Clock = std::chrono::steady_clock;

struct Percentiles {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

Percentiles percentiles(std::vector<std::uint64_t>& samples) {
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const std::size_t idx = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return static_cast<double>(samples[idx]);
  };
  return {at(0.50), at(0.99)};
}

/// The seed's central directory: one mutex-guarded map, every lookup and
/// every migration funnels through it (runtime/live_system.cpp, Central).
struct CentralDirectory {
  std::mutex mutex;
  std::unordered_map<ObjectId, NodeId> map;
};

Percentiles bench_central(std::size_t nodes, std::size_t objects,
                          std::size_t lookups, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  CentralDirectory dir;
  for (std::size_t i = 0; i < objects; ++i) {
    dir.map.emplace(ObjectId{static_cast<ObjectId::value_type>(i)},
                    NodeId{static_cast<NodeId::value_type>(i % nodes)});
  }
  std::vector<std::uint64_t> samples;
  samples.reserve(lookups);
  NodeId sink{0};
  for (std::size_t i = 0; i < lookups; ++i) {
    if (i % 8 == 0) {
      const ObjectId obj{static_cast<ObjectId::value_type>(rng() % objects)};
      const NodeId dest{static_cast<NodeId::value_type>(rng() % nodes)};
      std::lock_guard<std::mutex> lock(dir.mutex);
      dir.map[obj] = dest;
    }
    const ObjectId obj{static_cast<ObjectId::value_type>(rng() % objects)};
    const auto t0 = Clock::now();
    {
      std::lock_guard<std::mutex> lock(dir.mutex);
      sink = dir.map.find(obj)->second;
    }
    const auto t1 = Clock::now();
    samples.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  if (!sink.valid()) std::fputs("", stderr);  // keep `sink` observable
  return percentiles(samples);
}

Percentiles bench_sharded(std::size_t nodes, std::size_t objects,
                          std::size_t lookups, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  ShardedDirectoryOptions opts;
  opts.nodes = nodes;
  opts.strategy = ConsistencyStrategy::LazyForward;
  ShardedDirectory dir{opts};
  for (std::size_t i = 0; i < objects; ++i) {
    dir.insert(ObjectId{static_cast<ObjectId::value_type>(i)},
               NodeId{static_cast<NodeId::value_type>(i % nodes)});
  }
  std::vector<std::uint64_t> samples;
  samples.reserve(lookups);
  for (std::size_t i = 0; i < lookups; ++i) {
    if (i % 8 == 0) {
      const ObjectId obj{static_cast<ObjectId::value_type>(rng() % objects)};
      const NodeId dest{static_cast<NodeId::value_type>(rng() % nodes)};
      (void)dir.record_move(obj, dest);
    }
    const ObjectId obj{static_cast<ObjectId::value_type>(rng() % objects)};
    const NodeId from{static_cast<NodeId::value_type>(rng() % nodes)};
    const auto t0 = Clock::now();
    (void)dir.lookup(from, obj);
    const auto t1 = Clock::now();
    samples.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  return percentiles(samples);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t lookups = 200'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lookups" && i + 1 < argc) {
      lookups = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
  }
  const std::size_t node_counts[] = {10, 100, 1000};

  std::printf("{\n  \"results\": [\n");
  bool first = true;
  for (const std::size_t nodes : node_counts) {
    const std::size_t objects = 16 * nodes;
    for (const char* kind : {"central", "sharded"}) {
      const bool sharded = std::string(kind) == "sharded";
      const Percentiles p =
          sharded ? bench_sharded(nodes, objects, lookups, 42)
                  : bench_central(nodes, objects, lookups, 42);
      std::printf(
          "%s    {\"kind\": \"%s\", \"nodes\": %zu, \"objects\": %zu, "
          "\"lookups\": %zu, \"p50_ns\": %.1f, \"p99_ns\": %.1f}",
          first ? "" : ",\n", kind, nodes, objects, lookups, p.p50_ns,
          p.p99_ns);
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
