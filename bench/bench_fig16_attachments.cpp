// Figure 16: keeping objects together — conventional migration and
// transient placement, each with unrestricted vs A-transitive (alliance-
// scoped) attachment, against the sedentary baseline (parameters of
// Figure 17: D=24, S1=6, S2=6, ring-overlapping working sets of 2).
#include "bench_common.hpp"

#include "core/plot.hpp"

using namespace omig;
using migration::AttachTransitivity;
using migration::PolicyKind;

int main() {
  bench::print_header(
      "Figure 16 — Attachments in non-monolithic environments",
      "D=24 S1=6 S2=6 M=6 N~exp(6) t_i~exp(1) t_m~exp(30) |WS|=2; "
      "x = #clients");

  auto cfg = [](double x, PolicyKind policy, AttachTransitivity trans) {
    return core::fig16_config(static_cast<int>(x), policy, trans);
  };

  std::vector<core::SweepVariant> variants{
      {"without-migration",
       [&](double x) {
         return cfg(x, PolicyKind::Sedentary,
                    AttachTransitivity::Unrestricted);
       }},
      {"migration+unrestricted",
       [&](double x) {
         return cfg(x, PolicyKind::Conventional,
                    AttachTransitivity::Unrestricted);
       }},
      {"migration+A-transitive",
       [&](double x) {
         return cfg(x, PolicyKind::Conventional,
                    AttachTransitivity::ATransitive);
       }},
      {"placement+unrestricted",
       [&](double x) {
         return cfg(x, PolicyKind::Placement,
                    AttachTransitivity::Unrestricted);
       }},
      {"placement+A-transitive",
       [&](double x) {
         return cfg(x, PolicyKind::Placement,
                    AttachTransitivity::ATransitive);
       }},
  };

  const auto xs = bench::client_axis(12, bench::env_int("OMIG_POINTS", 12));
  const auto points = core::run_sweep(xs, variants, bench::sweep_options());
  auto table = core::sweep_table("clients", variants, points,
                                 core::Metric::TotalPerCall);
  std::cout << core::to_string(core::Metric::TotalPerCall) << "\n\n"
            << table.to_text() << '\n'
            << core::plot_sweep(variants, points,
                                core::Metric::TotalPerCall)
            << "\ncsv:\n" << table.to_csv();
  return 0;
}
